// Package seeds implements seed-URL generation (§2.2): keyword catalogues
// in the four categories of Table 1 (general / disease-specific /
// drug-specific / gene-specific) and five simulated search-engine APIs
// (Bing, Google, Arxiv, Nature, Nature blogs) with per-query result caps —
// the construction that forced the authors to issue thousands of queries
// against multiple engines.
//
// The engines reproduce the two §2.2 failure mechanisms:
//
//  1. general terms return "authoritative" portal front pages, which the
//     relevance classifier rejects, killing those crawl branches; and
//  2. the publisher engines (Arxiv, Nature) "return results only for
//     content hosted there" (§4.1).
package seeds

import (
	"fmt"
	"sort"

	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
	"webtextie/internal/rng"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// Category is one of the Table 1 keyword categories.
type Category int

const (
	// General covers broad biomedical terms ("cancer", "chronic pain").
	General Category = iota
	// DiseaseSpecific covers disease names ("thymoma", "nausea").
	DiseaseSpecific
	// DrugSpecific covers drug names ("GAD-67", "Aspirin").
	DrugSpecific
	// GeneSpecific covers gene names ("BRCA", "Cactin").
	GeneSpecific
	numCategories
)

// Categories lists all categories in Table 1 order.
var Categories = []Category{General, DiseaseSpecific, DrugSpecific, GeneSpecific}

// String names the category as in Table 1.
func (c Category) String() string {
	switch c {
	case General:
		return "general terms"
	case DiseaseSpecific:
		return "disease-specific"
	case DrugSpecific:
		return "drug-specific"
	case GeneSpecific:
		return "gene-specific"
	}
	return "unknown"
}

// CatalogSizes gives the number of terms per category. Paper values
// (Table 1): general 500 (166), disease 5000 (468), drug 4000 (325),
// gene 6500 (246) — first-crawl subset sizes in brackets.
type CatalogSizes struct {
	General, Disease, Drug, Gene int
}

// PaperSizes returns Table 1's full catalogue sizes.
func PaperSizes() CatalogSizes { return CatalogSizes{500, 5000, 4000, 6500} }

// PaperSubsetSizes returns Table 1's bracketed first-crawl subset sizes.
func PaperSubsetSizes() CatalogSizes { return CatalogSizes{166, 468, 325, 246} }

// ScaledSizes returns the catalogue sizes divided by factor (min 1 each).
func ScaledSizes(s CatalogSizes, factor int) CatalogSizes {
	d := func(n int) int {
		n /= factor
		if n < 1 {
			n = 1
		}
		return n
	}
	return CatalogSizes{d(s.General), d(s.Disease), d(s.Drug), d(s.Gene)}
}

// Catalog holds the search-term lists per category.
type Catalog struct {
	Terms map[Category][]string
}

// generalTermPool seeds the "general biomedical terms" category (the paper
// drew these from the National Cancer Institute and Genetic Alliance
// glossaries).
var generalTermPool = []string{
	"cancer", "chronic pain", "tumor", "chemotherapy", "radiation therapy",
	"biopsy", "metastasis", "oncology", "diagnosis", "prognosis", "remission",
	"clinical trial", "immune system", "genetics", "heredity", "mutation",
	"screening", "vaccine", "antibody", "benign", "malignant", "carcinogen",
	"pathology", "symptom", "syndrome", "therapy", "treatment", "prevention",
	"risk factor", "side effect", "gene therapy", "stem cell", "biomarker",
	"epidemiology", "infection", "inflammation", "autoimmune", "hormone",
	"enzyme", "protein", "dna", "rna", "chromosome", "cell division",
	"public health", "palliative care", "transplant", "dosage", "relapse",
	"survival rate",
}

// BuildCatalog draws terms from the lexicon (entity categories) and the
// general pool, up to the requested sizes. Terms are deterministic given
// the seed.
func BuildCatalog(seed uint64, lex *textgen.Lexicon, sizes CatalogSizes) *Catalog {
	r := rng.New(seed)
	c := &Catalog{Terms: map[Category][]string{}}

	pickGeneral := func(n int) []string {
		out := make([]string, 0, n)
		perm := r.Perm(len(generalTermPool))
		for i := 0; i < n; i++ {
			base := generalTermPool[perm[i%len(perm)]]
			if i >= len(perm) {
				base = fmt.Sprintf("%s %d", base, i)
			}
			out = append(out, base)
		}
		return out
	}
	pickEntities := func(t textgen.EntityType, n int) []string {
		entries := lex.ByType(t)
		out := make([]string, 0, n)
		perm := r.Perm(len(entries))
		for i := 0; i < n && i < len(entries); i++ {
			out = append(out, entries[perm[i]].Name)
		}
		return out
	}
	c.Terms[General] = pickGeneral(sizes.General)
	c.Terms[DiseaseSpecific] = pickEntities(textgen.Disease, sizes.Disease)
	c.Terms[DrugSpecific] = pickEntities(textgen.Drug, sizes.Drug)
	c.Terms[GeneSpecific] = pickEntities(textgen.Gene, sizes.Gene)
	return c
}

// Count returns the number of terms in a category.
func (c *Catalog) Count(cat Category) int { return len(c.Terms[cat]) }

// Total returns the number of terms across all categories.
func (c *Catalog) Total() int {
	n := 0
	for _, ts := range c.Terms {
		n += len(ts)
	}
	return n
}

// Engine is a simulated search-engine API.
type Engine struct {
	// Name identifies the engine ("bing", "arxiv", ...).
	Name string
	// ResultCap is the maximum number of results per query (all real
	// engine APIs "limit the number of returned results", §2.2).
	ResultCap int
	// QueryBudget caps the number of queries; 0 means unlimited.
	QueryBudget int
	// HostRestrict, if non-empty, limits results to this host (publisher
	// engines like Arxiv and Nature).
	HostRestrict string

	web     *synthweb.Web
	seed    uint64
	queries int
}

// DefaultEngines returns the five engines of §2.2 bound to a web.
func DefaultEngines(seed uint64, web *synthweb.Web) []*Engine {
	return []*Engine{
		{Name: "bing", ResultCap: 30, QueryBudget: 20000, web: web, seed: seed},
		{Name: "google", ResultCap: 30, QueryBudget: 20000, web: web, seed: seed},
		{Name: "arxiv", ResultCap: 20, QueryBudget: 20000, HostRestrict: "arxiv.org", web: web, seed: seed},
		{Name: "nature", ResultCap: 20, QueryBudget: 20000, HostRestrict: "blogs.nature.com", web: web, seed: seed},
		{Name: "natureblogs", ResultCap: 10, QueryBudget: 20000, HostRestrict: "blogs.nature.com", web: web, seed: seed},
	}
}

// Queries returns how many queries this engine has served.
func (e *Engine) Queries() int { return e.queries }

// Search returns up to ResultCap URLs for a term. General-category terms
// yield authoritative portal pages; specific terms yield deep content
// pages on topical hosts. Results are deterministic per (engine, term).
func (e *Engine) Search(term string, cat Category) []string {
	if e.QueryBudget > 0 && e.queries >= e.QueryBudget {
		return nil
	}
	e.queries++
	r := rng.New(e.seed).Split("engine/" + e.Name + "/" + term)
	var out []string
	seen := map[string]bool{}

	if e.HostRestrict != "" {
		h, ok := e.web.HostByName(e.HostRestrict)
		if !ok {
			return nil
		}
		for len(out) < e.ResultCap && len(out) < h.Pages {
			u := synthweb.PageURL(h.Name, r.Intn(h.Pages))
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
		return out
	}

	if cat == General {
		// Authoritative results: portal front pages of topical hosts.
		hosts := e.web.Hosts
		tries := 0
		for len(out) < e.ResultCap && tries < e.ResultCap*10 {
			tries++
			h := hosts[r.Intn(len(hosts))]
			if !h.Biomed && r.Bool(0.8) {
				continue
			}
			u := synthweb.PageURL(h.Name, 0)
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
			}
		}
		return out
	}

	// Specific terms resolve to the term's few "home" hosts: a rare gene
	// or drug name is mentioned on a handful of sites, not everywhere.
	// The home set is a function of the term alone, so different engines
	// return different pages of the SAME hosts — issuing more queries only
	// widens coverage through more terms, which is why the paper needed
	// 15,000 queries for a sustainable seed list (§2.2).
	homes := e.termHomeHosts(term)
	for _, h := range homes {
		perHost := e.ResultCap / len(homes)
		if perHost < 1 {
			perHost = 1
		}
		tries := 0
		added := 0
		for added < perHost && tries < perHost*8 && len(out) < e.ResultCap {
			tries++
			u := synthweb.PageURL(h.Name, r.Intn(h.Pages))
			if !seen[u] {
				seen[u] = true
				out = append(out, u)
				added++
			}
		}
	}
	return out
}

// termHomeHosts derives the 2-4 biomedical hosts that "cover" a specific
// term, deterministically from the term itself.
func (e *Engine) termHomeHosts(term string) []*synthweb.Host {
	r := rng.New(e.seed).Split("term-home/" + term)
	var biomed []*synthweb.Host
	for _, h := range e.web.Hosts {
		if h.Biomed {
			biomed = append(biomed, h)
		}
	}
	if len(biomed) == 0 {
		return nil
	}
	k := 2 + r.Intn(3)
	out := make([]*synthweb.Host, 0, k)
	seen := map[string]bool{}
	for len(out) < k {
		h := biomed[r.Intn(len(biomed))]
		if !seen[h.Name] {
			seen[h.Name] = true
			out = append(out, h)
		}
		if len(out) >= len(biomed) {
			break
		}
	}
	return out
}

// Run queries every engine with every term of the catalogue and merges the
// results into a deduplicated, sorted seed list (the §2.2 procedure).
type Run struct {
	// SeedURLs is the merged seed list.
	SeedURLs []string
	// QueriesIssued is the total number of engine queries.
	QueriesIssued int
}

// Generate executes a full seed-generation run.
func Generate(engines []*Engine, catalog *Catalog) Run {
	return GenerateLogged(engines, catalog, nil)
}

// GenerateLogged is Generate with an event log: one record per category
// (terms queried, URLs contributed) and a final summary, timestamped on
// the query-count logical clock so exports are deterministic per seed.
func GenerateLogged(engines []*Engine, catalog *Catalog, sink *evlog.Sink) Run {
	lg := sink.Logger("seeds.engine")
	seen := map[string]bool{}
	var run Run
	for _, cat := range Categories {
		before := len(run.SeedURLs)
		for _, term := range catalog.Terms[cat] {
			for _, e := range engines {
				res := e.Search(term, cat)
				run.QueriesIssued++
				for _, u := range res {
					if !seen[u] {
						seen[u] = true
						run.SeedURLs = append(run.SeedURLs, u)
					}
				}
			}
		}
		lg.Info("seeds.category", int64(run.QueriesIssued),
			trace.String("category", cat.String()),
			trace.Int("terms", int64(len(catalog.Terms[cat]))),
			trace.Int("urls", int64(len(run.SeedURLs)-before)))
	}
	if len(run.SeedURLs) == 0 {
		lg.Warn("seeds.empty", int64(run.QueriesIssued),
			trace.Int("queries", int64(run.QueriesIssued)))
	}
	lg.Info("seeds.done", int64(run.QueriesIssued),
		trace.Int("queries", int64(run.QueriesIssued)),
		trace.Int("urls", int64(len(run.SeedURLs))))
	sort.Strings(run.SeedURLs)
	return run
}
