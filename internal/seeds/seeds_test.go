package seeds

import (
	"strings"
	"testing"

	"webtextie/internal/rng"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

func testSetup(t testing.TB) (*textgen.Lexicon, *synthweb.Web) {
	t.Helper()
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 700, Drugs: 200, Diseases: 200}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	cfg := synthweb.DefaultConfig()
	cfg.NumHosts = 120
	return lex, synthweb.New(cfg, gen)
}

func TestPaperSizes(t *testing.T) {
	s := PaperSizes()
	if s.General != 500 || s.Disease != 5000 || s.Drug != 4000 || s.Gene != 6500 {
		t.Errorf("PaperSizes = %+v", s)
	}
	sub := PaperSubsetSizes()
	if sub.General != 166 || sub.Disease != 468 || sub.Drug != 325 || sub.Gene != 246 {
		t.Errorf("PaperSubsetSizes = %+v", sub)
	}
}

func TestScaledSizes(t *testing.T) {
	s := ScaledSizes(PaperSizes(), 10)
	if s.General != 50 || s.Disease != 500 || s.Drug != 400 || s.Gene != 650 {
		t.Errorf("scaled = %+v", s)
	}
	tiny := ScaledSizes(CatalogSizes{1, 1, 1, 1}, 100)
	if tiny.General != 1 {
		t.Error("scaling must floor at 1")
	}
}

func TestBuildCatalog(t *testing.T) {
	lex, _ := testSetup(t)
	c := BuildCatalog(3, lex, CatalogSizes{General: 20, Disease: 50, Drug: 40, Gene: 60})
	if c.Count(General) != 20 || c.Count(DiseaseSpecific) != 50 ||
		c.Count(DrugSpecific) != 40 || c.Count(GeneSpecific) != 60 {
		t.Errorf("counts: %d %d %d %d", c.Count(General), c.Count(DiseaseSpecific),
			c.Count(DrugSpecific), c.Count(GeneSpecific))
	}
	if c.Total() != 170 {
		t.Errorf("total = %d", c.Total())
	}
	// Entity terms must come from the lexicon.
	for _, term := range c.Terms[GeneSpecific] {
		if e, ok := lex.Lookup(term); !ok || e.Type != textgen.Gene {
			t.Errorf("gene term %q not a lexicon gene", term)
		}
	}
}

func TestBuildCatalogCapsAtLexicon(t *testing.T) {
	lex, _ := testSetup(t)
	c := BuildCatalog(3, lex, CatalogSizes{Drug: 100000})
	if c.Count(DrugSpecific) != 200 {
		t.Errorf("drug terms = %d, want capped at 200", c.Count(DrugSpecific))
	}
}

func TestCatalogDeterministic(t *testing.T) {
	lex, _ := testSetup(t)
	a := BuildCatalog(7, lex, CatalogSizes{General: 10, Disease: 10, Drug: 10, Gene: 10})
	b := BuildCatalog(7, lex, CatalogSizes{General: 10, Disease: 10, Drug: 10, Gene: 10})
	for _, cat := range Categories {
		for i := range a.Terms[cat] {
			if a.Terms[cat][i] != b.Terms[cat][i] {
				t.Fatalf("catalog differs at %v[%d]", cat, i)
			}
		}
	}
}

func TestSearchDeterministicAndCapped(t *testing.T) {
	_, web := testSetup(t)
	e := &Engine{Name: "bing", ResultCap: 10, web: web, seed: 5}
	r1 := e.Search("thymoma", DiseaseSpecific)
	e2 := &Engine{Name: "bing", ResultCap: 10, web: web, seed: 5}
	r2 := e2.Search("thymoma", DiseaseSpecific)
	if len(r1) == 0 || len(r1) > 10 {
		t.Fatalf("results = %d", len(r1))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("search not deterministic")
		}
	}
}

func TestGeneralTermsReturnPortals(t *testing.T) {
	_, web := testSetup(t)
	e := &Engine{Name: "google", ResultCap: 20, web: web, seed: 5}
	for _, u := range e.Search("cancer", General) {
		if !strings.HasSuffix(u, "/p0.html") {
			t.Errorf("general-term result %q is not a portal front page", u)
		}
	}
}

func TestSpecificTermsReachDeepPages(t *testing.T) {
	_, web := testSetup(t)
	e := &Engine{Name: "google", ResultCap: 30, web: web, seed: 5}
	deep := 0
	for _, term := range []string{"alpha", "beta", "gamma", "delta"} {
		for _, u := range e.Search(term, GeneSpecific) {
			if !strings.HasSuffix(u, "/p0.html") {
				deep++
			}
		}
	}
	if deep == 0 {
		t.Error("specific terms returned only portals")
	}
}

func TestHostRestrictedEngine(t *testing.T) {
	_, web := testSetup(t)
	e := &Engine{Name: "arxiv", ResultCap: 10, HostRestrict: "arxiv.org", web: web, seed: 5}
	res := e.Search("BRCA", GeneSpecific)
	if len(res) == 0 {
		t.Fatal("no results from restricted engine")
	}
	for _, u := range res {
		h, _, _ := synthweb.SplitURL(u)
		if h != "arxiv.org" {
			t.Errorf("restricted engine returned %q", u)
		}
	}
}

func TestQueryBudget(t *testing.T) {
	_, web := testSetup(t)
	e := &Engine{Name: "bing", ResultCap: 5, QueryBudget: 2, web: web, seed: 5}
	if len(e.Search("a", General)) == 0 || len(e.Search("b", General)) == 0 {
		t.Fatal("budgeted queries failed")
	}
	if res := e.Search("c", General); res != nil {
		t.Error("query over budget returned results")
	}
	if e.Queries() != 2 {
		t.Errorf("queries = %d", e.Queries())
	}
}

func TestGenerateMergesAndDedups(t *testing.T) {
	lex, web := testSetup(t)
	catalog := BuildCatalog(3, lex, CatalogSizes{General: 5, Disease: 10, Drug: 10, Gene: 10})
	run := Generate(DefaultEngines(5, web), catalog)
	if len(run.SeedURLs) == 0 {
		t.Fatal("no seeds")
	}
	seen := map[string]bool{}
	for _, u := range run.SeedURLs {
		if seen[u] {
			t.Fatalf("duplicate seed %q", u)
		}
		seen[u] = true
	}
	if run.QueriesIssued != 35*5 {
		t.Errorf("queries = %d, want %d", run.QueriesIssued, 35*5)
	}
}

func TestLargerCatalogYieldsMoreSeeds(t *testing.T) {
	// §2.2: the subset run produced 45,227 seeds, the full run 485,462.
	lex, web := testSetup(t)
	small := Generate(DefaultEngines(5, web),
		BuildCatalog(3, lex, CatalogSizes{General: 3, Disease: 5, Drug: 5, Gene: 5}))
	large := Generate(DefaultEngines(5, web),
		BuildCatalog(3, lex, CatalogSizes{General: 30, Disease: 100, Drug: 100, Gene: 200}))
	if len(large.SeedURLs) <= len(small.SeedURLs) {
		t.Errorf("large run %d seeds <= small run %d", len(large.SeedURLs), len(small.SeedURLs))
	}
}

func TestCategoryString(t *testing.T) {
	want := map[Category]string{
		General: "general terms", DiseaseSpecific: "disease-specific",
		DrugSpecific: "drug-specific", GeneSpecific: "gene-specific",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q", c, c.String())
		}
	}
}
