package htmlkit

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeSimple(t *testing.T) {
	toks := Tokenize(`<html><body><p class="x">Hello</p></body></html>`)
	want := []struct {
		typ  TokenType
		name string
		data string
	}{
		{StartTag, "html", ""},
		{StartTag, "body", ""},
		{StartTag, "p", ""},
		{Text, "", "Hello"},
		{EndTag, "p", ""},
		{EndTag, "body", ""},
		{EndTag, "html", ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Type != w.typ || toks[i].Name != w.name || (w.data != "" && toks[i].Data != w.data) {
			t.Errorf("token %d = %+v, want %+v", i, toks[i], w)
		}
	}
}

func TestTokenizeAttributes(t *testing.T) {
	toks := Tokenize(`<a href="http://x.com/p" class='big' disabled>link</a>`)
	if toks[0].Type != StartTag || toks[0].Name != "a" {
		t.Fatalf("first token = %+v", toks[0])
	}
	if v, ok := toks[0].Attr("href"); !ok || v != "http://x.com/p" {
		t.Errorf("href = %q, ok=%v", v, ok)
	}
	if v, ok := toks[0].Attr("class"); !ok || v != "big" {
		t.Errorf("class = %q", v)
	}
	if _, ok := toks[0].Attr("disabled"); !ok {
		t.Error("missing bare attribute")
	}
	if _, ok := toks[0].Attr("nope"); ok {
		t.Error("found nonexistent attribute")
	}
}

func TestTokenizeSelfClosing(t *testing.T) {
	toks := Tokenize(`<br/><img src="x.png" />`)
	if !toks[0].SelfClosing || toks[0].Name != "br" {
		t.Errorf("br: %+v", toks[0])
	}
	if !toks[1].SelfClosing || toks[1].Name != "img" {
		t.Errorf("img: %+v", toks[1])
	}
	if v, _ := toks[1].Attr("src"); v != "x.png" {
		t.Errorf("src = %q", v)
	}
}

func TestTokenizeComment(t *testing.T) {
	toks := Tokenize(`a<!-- hidden -->b`)
	if len(toks) != 3 || toks[1].Type != Comment || toks[1].Data != " hidden " {
		t.Fatalf("tokens: %+v", toks)
	}
}

func TestTokenizeDoctype(t *testing.T) {
	toks := Tokenize(`<!DOCTYPE html><p>x</p>`)
	if toks[0].Type != Doctype {
		t.Fatalf("first token: %+v", toks[0])
	}
}

func TestTokenizeScriptContentSkipped(t *testing.T) {
	toks := Tokenize(`<script>var a = "<p>not a tag</p>";</script><p>real</p>`)
	for _, tok := range toks {
		if tok.Type == Text && strings.Contains(tok.Data, "not a tag") {
			t.Fatalf("script content leaked as text: %+v", tok)
		}
	}
	// The real paragraph must survive.
	found := false
	for _, tok := range toks {
		if tok.Type == Text && tok.Data == "real" {
			found = true
		}
	}
	if !found {
		t.Fatal("content after script lost")
	}
}

func TestTokenizeMalformedNeverPanics(t *testing.T) {
	cases := []string{
		"", "<", "<>", "</>", "<a", "<a href=", `<a href="unterminated`,
		"<p><b>no close", "</nope>", "<!-- unterminated", "<<p>>", "< p>",
		"<p class=>x</p>", "text < 5 and > 3", "<a\x00b>", "<p//>",
		"<script>never closed", "<b></b></b></b>",
	}
	for _, c := range cases {
		_ = Tokenize(c) // must not panic
	}
}

func TestTokenizeRoundTripProperty(t *testing.T) {
	// Property: all input text outside tags is preserved in Text tokens.
	err := quick.Check(func(a, b string) bool {
		a = strings.Map(dropAngle, a)
		b = strings.Map(dropAngle, b)
		toks := Tokenize(a + "<p>" + b + "</p>")
		var got strings.Builder
		for _, tok := range toks {
			if tok.Type == Text {
				got.WriteString(tok.Data)
			}
		}
		return got.String() == a+b
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func dropAngle(r rune) rune {
	if r == '<' || r == '>' || r == '&' {
		return ' '
	}
	return r
}

func TestRepairUnclosed(t *testing.T) {
	toks, stats := Repair(Tokenize("<div><p>text"))
	if stats.UnclosedTags != 2 {
		t.Errorf("UnclosedTags = %d, want 2", stats.UnclosedTags)
	}
	// Stream must end with </p></div>.
	last := toks[len(toks)-1]
	if last.Type != EndTag || last.Name != "div" {
		t.Errorf("last token = %+v", last)
	}
}

func TestRepairStray(t *testing.T) {
	_, stats := Repair(Tokenize("<p>x</p></div></span>"))
	if stats.StrayEndTags != 2 {
		t.Errorf("StrayEndTags = %d, want 2", stats.StrayEndTags)
	}
}

func TestRepairMisnested(t *testing.T) {
	toks, stats := Repair(Tokenize("<b><i>x</b></i>"))
	if stats.MisnestedTags != 1 {
		t.Errorf("MisnestedTags = %d, want 1", stats.MisnestedTags)
	}
	// After repair, </i> must appear before </b>.
	order := []string{}
	for _, tok := range toks {
		if tok.Type == EndTag {
			order = append(order, tok.Name)
		}
	}
	if len(order) != 2 || order[0] != "i" || order[1] != "b" {
		t.Errorf("end tag order = %v", order)
	}
}

func TestRepairBalancedProperty(t *testing.T) {
	// Property: after repair every start tag (non-void, non-self-closing)
	// has a matching end tag and nesting is well-formed.
	inputs := []string{
		"<div><p>a<p>b</div>", "<ul><li>1<li>2</ul>", "<b><i>x</b>y</i>",
		"<table><tr><td>x</table>", "text</p><p>more", "<a><b><c><d>deep",
	}
	for _, in := range inputs {
		toks, _ := Repair(Tokenize(in))
		var stack []string
		for _, tok := range toks {
			switch tok.Type {
			case StartTag:
				if !tok.SelfClosing && !voidElements[tok.Name] {
					stack = append(stack, tok.Name)
				}
			case EndTag:
				if len(stack) == 0 || stack[len(stack)-1] != tok.Name {
					t.Fatalf("input %q: unbalanced end tag %q (stack %v)", in, tok.Name, stack)
				}
				stack = stack[:len(stack)-1]
			}
		}
		if len(stack) != 0 {
			t.Fatalf("input %q: unclosed after repair: %v", in, stack)
		}
	}
}

func TestRepairStatsTotal(t *testing.T) {
	s := RepairStats{UnclosedTags: 1, StrayEndTags: 2, MisnestedTags: 3}
	if s.Total() != 6 {
		t.Errorf("Total = %d", s.Total())
	}
}

func TestExtractBlocks(t *testing.T) {
	html := `<body><nav><a href="/">Home</a> <a href="/x">About</a></nav>
<p>This is the main article text with many words in it for sure.</p>
<div class="footer"><a href="/c">Contact</a></div></body>`
	toks, _ := Repair(Tokenize(html))
	blocks := ExtractBlocks(toks)
	if len(blocks) < 3 {
		t.Fatalf("got %d blocks: %+v", len(blocks), blocks)
	}
	// Find the article block: it must have zero link density.
	var article *Block
	for i := range blocks {
		if strings.Contains(blocks[i].Text, "main article") {
			article = &blocks[i]
		}
	}
	if article == nil {
		t.Fatal("article block not found")
	}
	if article.LinkDensity() != 0 {
		t.Errorf("article link density = %v", article.LinkDensity())
	}
	if article.Tag != "p" {
		t.Errorf("article tag = %q", article.Tag)
	}
	// Nav block: fully linked.
	var nav *Block
	for i := range blocks {
		if strings.Contains(blocks[i].Text, "Home") {
			nav = &blocks[i]
		}
	}
	if nav == nil {
		t.Fatal("nav block not found")
	}
	if nav.LinkDensity() < 0.99 {
		t.Errorf("nav link density = %v", nav.LinkDensity())
	}
}

func TestLinkDensityEmptyBlock(t *testing.T) {
	b := Block{}
	if b.LinkDensity() != 0 {
		t.Error("empty block should have zero link density")
	}
}

func TestStripMarkup(t *testing.T) {
	got := StripMarkup(`<html><body><h1>Title</h1><p>Body &amp; text.</p><script>x()</script></body></html>`)
	if !strings.Contains(got, "Title") || !strings.Contains(got, "Body & text.") {
		t.Errorf("StripMarkup = %q", got)
	}
	if strings.Contains(got, "x()") {
		t.Errorf("script leaked: %q", got)
	}
}

func TestExtractLinks(t *testing.T) {
	toks := Tokenize(`<a href="http://a.com/1">One</a><p>x</p><a href="/rel">Two words</a><a>no href</a>`)
	links := ExtractLinks(toks)
	if len(links) != 2 {
		t.Fatalf("got %d links: %+v", len(links), links)
	}
	if links[0].Href != "http://a.com/1" || links[0].Anchor != "One" {
		t.Errorf("link 0 = %+v", links[0])
	}
	if links[1].Href != "/rel" || links[1].Anchor != "Two words" {
		t.Errorf("link 1 = %+v", links[1])
	}
}

func TestExtractLinksUnclosedAnchor(t *testing.T) {
	links := ExtractLinks(Tokenize(`<a href="/x">dangling`))
	if len(links) != 1 || links[0].Href != "/x" {
		t.Fatalf("links = %+v", links)
	}
}

func TestTitle(t *testing.T) {
	toks := Tokenize(`<html><head><title>My  Page </title></head><body>x</body></html>`)
	if got := Title(toks); got != "My Page" {
		t.Errorf("Title = %q", got)
	}
	if got := Title(Tokenize("<p>no title</p>")); got != "" {
		t.Errorf("Title = %q, want empty", got)
	}
}

func TestDecodeEntities(t *testing.T) {
	if got := DecodeEntities("a &amp; b &lt;c&gt; &nbsp;d"); got != "a & b <c>  d" {
		t.Errorf("DecodeEntities = %q", got)
	}
	if got := DecodeEntities("plain"); got != "plain" {
		t.Errorf("DecodeEntities(plain) = %q", got)
	}
}

func TestIsBlock(t *testing.T) {
	if !IsBlock("p") || !IsBlock("div") || IsBlock("span") || IsBlock("b") {
		t.Error("IsBlock misclassifies")
	}
}

func BenchmarkTokenize(b *testing.B) {
	html := strings.Repeat(`<div class="row"><p>Some text with <a href="/x">links</a> inside.</p></div>`, 100)
	b.SetBytes(int64(len(html)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Tokenize(html)
	}
}

func BenchmarkRepairAndBlocks(b *testing.B) {
	html := strings.Repeat(`<div><p>Some text <b>bold<i>both</b></i><li>item`, 200)
	toks := Tokenize(html)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		repaired, _ := Repair(toks)
		_ = ExtractBlocks(repaired)
	}
}

func TestTokenizeRandomBytesNeverPanics(t *testing.T) {
	// Arbitrary byte soup — including angle brackets in pathological
	// positions — must tokenize and repair without panicking, and repair
	// must always yield balanced streams.
	if err := quick.Check(func(data []byte) bool {
		toks, _ := Repair(Tokenize(string(data)))
		var stack []string
		for _, tok := range toks {
			switch tok.Type {
			case StartTag:
				if !tok.SelfClosing && !voidElements[tok.Name] {
					stack = append(stack, tok.Name)
				}
			case EndTag:
				if len(stack) == 0 || stack[len(stack)-1] != tok.Name {
					return false
				}
				stack = stack[:len(stack)-1]
			}
		}
		return len(stack) == 0
	}, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractBlocksRandomNeverPanics(t *testing.T) {
	if err := quick.Check(func(data string) bool {
		toks, _ := Repair(Tokenize(data))
		blocks := ExtractBlocks(toks)
		for _, b := range blocks {
			if b.Words < 0 || b.LinkedWords > b.Words+100 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
