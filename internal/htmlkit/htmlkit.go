// Package htmlkit implements the web-analytics (WA) primitives the paper's
// data flow needs before any linguistic processing can start: an HTML
// tokenizer that survives the malformed markup dominating the real web
// ("95% of HTML documents on the web do not adhere to W3C HTML standards",
// §5 citing [19]), a markup repair pass, markup removal, and link
// extraction.
//
// The tokenizer is hand-written (stdlib only) and never fails: any byte
// sequence produces a token stream. Repair is performed structurally on the
// token stream (implied end tags, unclosed elements, stray close tags), the
// strategy used by browser parsers and by the W3C-"tidy" class of tools.
package htmlkit

import "strings"

// TokenType distinguishes the kinds of tokens the tokenizer emits.
type TokenType int

const (
	// Text is character data between tags.
	Text TokenType = iota
	// StartTag is an opening tag, possibly self-closing.
	StartTag
	// EndTag is a closing tag.
	EndTag
	// Comment is an HTML comment.
	Comment
	// Doctype is a <!DOCTYPE ...> declaration.
	Doctype
)

// Token is one lexical unit of an HTML document.
type Token struct {
	Type TokenType
	// Name is the lower-cased tag name for StartTag/EndTag.
	Name string
	// Data is the text content (Text, Comment) or raw declaration (Doctype).
	Data string
	// Attrs holds attributes for StartTag in document order.
	Attrs []Attr
	// SelfClosing marks <br/>-style tags.
	SelfClosing bool
}

// Attr is one tag attribute.
type Attr struct {
	Key, Val string
}

// Attr returns the value of the named attribute on a start tag.
func (t *Token) Attr(key string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return "", false
}

// voidElements never take end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements swallow everything until their literal end tag.
var rawTextElements = map[string]bool{"script": true, "style": true}

// blockElements introduce block boundaries when extracting text.
var blockElements = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"body": true, "div": true, "dl": true, "dt": true, "dd": true,
	"fieldset": true, "figure": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "li": true, "main": true, "nav": true,
	"ol": true, "p": true, "pre": true, "section": true, "table": true,
	"td": true, "th": true, "tr": true, "ul": true, "br": true, "title": true,
}

// IsBlock reports whether the tag introduces a block boundary.
func IsBlock(name string) bool { return blockElements[name] }

// Tokenize lexes raw HTML into tokens. It never returns an error: malformed
// input degrades to text tokens, mirroring browser behaviour.
func Tokenize(html string) []Token {
	var out []Token
	i := 0
	n := len(html)
	for i < n {
		if html[i] != '<' {
			j := strings.IndexByte(html[i:], '<')
			if j < 0 {
				out = append(out, Token{Type: Text, Data: html[i:]})
				break
			}
			out = append(out, Token{Type: Text, Data: html[i : i+j]})
			i += j
			continue
		}
		// At '<'.
		if i+1 >= n {
			out = append(out, Token{Type: Text, Data: "<"})
			break
		}
		switch {
		case strings.HasPrefix(html[i:], "<!--"):
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				out = append(out, Token{Type: Comment, Data: html[i+4:]})
				i = n
			} else {
				out = append(out, Token{Type: Comment, Data: html[i+4 : i+4+end]})
				i += 4 + end + 3
			}
		case html[i+1] == '!' || html[i+1] == '?':
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				out = append(out, Token{Type: Text, Data: html[i:]})
				i = n
			} else {
				out = append(out, Token{Type: Doctype, Data: html[i : i+end+1]})
				i += end + 1
			}
		case html[i+1] == '/':
			end := strings.IndexByte(html[i:], '>')
			if end < 0 {
				// Unterminated close tag: treat rest as text (repair later).
				out = append(out, Token{Type: Text, Data: html[i:]})
				i = n
			} else {
				name := strings.ToLower(strings.TrimSpace(html[i+2 : i+end]))
				name = strings.Fields(name + " x")[0] // tolerate junk after the name
				if name == "x" {
					name = ""
				}
				if name != "" && isTagName(name) {
					out = append(out, Token{Type: EndTag, Name: name})
				} else {
					out = append(out, Token{Type: Text, Data: html[i : i+end+1]})
				}
				i += end + 1
			}
		case isNameStart(html[i+1]):
			tok, next := lexStartTag(html, i)
			out = append(out, tok)
			i = next
			// Raw-text elements consume to their matching end tag.
			if tok.Type == StartTag && rawTextElements[tok.Name] && !tok.SelfClosing {
				closeSeq := "</" + tok.Name
				idx := strings.Index(strings.ToLower(html[i:]), closeSeq)
				if idx < 0 {
					// Unclosed script/style: swallow the rest.
					i = n
				} else {
					gt := strings.IndexByte(html[i+idx:], '>')
					out = append(out, Token{Type: EndTag, Name: tok.Name})
					if gt < 0 {
						i = n
					} else {
						i += idx + gt + 1
					}
				}
			}
		default:
			// '<' followed by a non-name char: literal text.
			out = append(out, Token{Type: Text, Data: "<"})
			i++
		}
	}
	return out
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isTagName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-') {
			return false
		}
	}
	return len(s) > 0
}

// lexStartTag lexes a start tag beginning at html[i] == '<'. It returns the
// token and the index just past the tag. Unterminated tags consume to EOF.
func lexStartTag(html string, i int) (Token, int) {
	n := len(html)
	j := i + 1
	for j < n && (isNameStart(html[j]) || html[j] >= '0' && html[j] <= '9' || html[j] == '-') {
		j++
	}
	tok := Token{Type: StartTag, Name: strings.ToLower(html[i+1 : j])}
	// Attributes.
	for j < n {
		for j < n && (html[j] == ' ' || html[j] == '\t' || html[j] == '\n' || html[j] == '\r') {
			j++
		}
		if j >= n {
			return tok, n
		}
		if html[j] == '>' {
			return tok, j + 1
		}
		if html[j] == '/' {
			if j+1 < n && html[j+1] == '>' {
				tok.SelfClosing = true
				return tok, j + 2
			}
			j++
			continue
		}
		if html[j] == '<' {
			// Broken tag: a new tag starts before this one closed. Repair by
			// implicitly closing here — the common real-world breakage.
			return tok, j
		}
		// Attribute name.
		ks := j
		for j < n && html[j] != '=' && html[j] != ' ' && html[j] != '\t' &&
			html[j] != '\n' && html[j] != '>' && html[j] != '/' && html[j] != '<' {
			j++
		}
		key := strings.ToLower(html[ks:j])
		val := ""
		if j < n && html[j] == '=' {
			j++
			if j < n && (html[j] == '"' || html[j] == '\'') {
				q := html[j]
				j++
				vs := j
				for j < n && html[j] != q {
					j++
				}
				val = html[vs:j]
				if j < n {
					j++
				}
			} else {
				vs := j
				for j < n && html[j] != ' ' && html[j] != '>' && html[j] != '\t' && html[j] != '\n' {
					j++
				}
				val = html[vs:j]
			}
		}
		if key != "" {
			tok.Attrs = append(tok.Attrs, Attr{Key: key, Val: val})
		}
	}
	return tok, n
}

// entity replacements for the handful of entities the generators emit.
var entityReplacer = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`, "&apos;", "'",
	"&nbsp;", " ", "&#39;", "'", "&mdash;", "—", "&ndash;", "–",
)

// DecodeEntities resolves common character references.
func DecodeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}
