package htmlkit

import (
	"strings"
	"testing"
	"unicode/utf8"

	"webtextie/internal/rng"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// corruptSeedCorpus renders a small fully-corrupted synthetic web and
// returns its HTML page bodies — realistic malformed markup (dropped end
// tags, stray tags, unquoted attributes) for fuzz seeding.
func corruptSeedCorpus(tb testing.TB, maxPages int) []string {
	tb.Helper()
	lex := textgen.NewLexicon(rng.New(11), textgen.DefaultLexiconSizes(), 0.75)
	gen := textgen.NewGenerator(12, lex, textgen.DefaultProfiles())
	cfg := synthweb.DefaultConfig()
	cfg.Seed = 11
	cfg.NumHosts = 4
	cfg.CorruptShare = 1.0
	web := synthweb.New(cfg, gen)

	var out []string
	for _, h := range web.Hosts {
		for i := 0; i < h.Pages && len(out) < maxPages; i++ {
			p, err := web.Fetch(synthweb.PageURL(h.Name, i))
			if err != nil {
				continue
			}
			if strings.Contains(string(p.Body), "<html") || strings.Contains(string(p.Body), "<HTML") {
				out = append(out, string(p.Body))
			}
		}
		if len(out) >= maxPages {
			break
		}
	}
	if len(out) == 0 {
		tb.Fatal("corrupt seed corpus is empty")
	}
	return out
}

// handcraftedMalformed are pathological fragments the synthetic corruptor
// does not produce: truncation mid-tag, deep nesting, binary junk.
var handcraftedMalformed = []string{
	"",
	"<",
	"<p",
	"<p class=",
	"plain text, no markup at all",
	"<html><body><p>unclosed paragraph<div>and a div",
	"<table><tr><td><table><tr><td>nested tables, nothing closed",
	"<a href=x.html>link <a href=y.html>inside link</a>",
	"<script>if (a < b) { document.write('<p>') }</script>after",
	"<!-- comment that never ends <p>hidden",
	"<p>&amp; &lt; &gt; &nbsp; &#65; &unknown; &#xZZ;",
	"<P CLASS=HEAD>UPPERCASE TAGS</P><BR><HR>",
	"</div></div></p>only end tags",
	"<div \x00\x01\xff attr=\xfe>binary in markup</div>",
	"<style>body { color: red }</style><p>visible</p>",
	strings.Repeat("<div>", 300) + "deep" + strings.Repeat("</div>", 100),
}

// FuzzTokenizeRepairExtract drives the full htmlkit pipeline with
// arbitrary bytes: it must never panic, and valid-UTF-8 input must yield
// valid-UTF-8 block text.
func FuzzTokenizeRepairExtract(f *testing.F) {
	for _, s := range corruptSeedCorpus(f, 12) {
		f.Add(s)
	}
	for _, s := range handcraftedMalformed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, html string) {
		tokens := Tokenize(html)
		repaired, stats := Repair(tokens)
		if stats.UnclosedTags < 0 || stats.StrayEndTags < 0 {
			t.Fatalf("negative repair stats: %+v", stats)
		}
		blocks := ExtractBlocks(repaired)
		if !utf8.ValidString(html) {
			return
		}
		for i, b := range blocks {
			if !utf8.ValidString(b.Text) {
				t.Fatalf("block %d text is not valid UTF-8: %q", i, b.Text)
			}
			if b.Words < 0 || b.LinkedWords < 0 || b.LinkedWords > b.Words {
				t.Fatalf("block %d inconsistent word counts: %+v", i, b)
			}
		}
	})
}

// FuzzDecodeEntities checks the entity decoder on arbitrary input.
func FuzzDecodeEntities(f *testing.F) {
	f.Add("&amp;")
	f.Add("&#65;&#x41;")
	f.Add("&unterminated")
	f.Add("&;&&#;&#x;")
	f.Fuzz(func(t *testing.T, s string) {
		out := DecodeEntities(s)
		if utf8.ValidString(s) && !utf8.ValidString(out) {
			t.Fatalf("DecodeEntities(%q) = %q, not valid UTF-8", s, out)
		}
	})
}
