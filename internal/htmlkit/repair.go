package htmlkit

import "strings"

// RepairStats records what the repair pass had to fix; the crawl analysis
// reports these to quantify how broken web markup is (§5: 13% of sites in
// [19] could not be transcoded at all).
type RepairStats struct {
	// UnclosedTags counts start tags with no matching end tag.
	UnclosedTags int
	// StrayEndTags counts end tags with no matching open element.
	StrayEndTags int
	// MisnestedTags counts end tags closing across other open elements.
	MisnestedTags int
}

// Total returns the number of repairs performed.
func (s RepairStats) Total() int { return s.UnclosedTags + s.StrayEndTags + s.MisnestedTags }

// Repair normalizes a token stream into a well-formed one: every start tag
// is eventually closed, stray end tags are dropped, and misnested end tags
// implicitly close the intervening elements (the browser algorithm).
func Repair(tokens []Token) ([]Token, RepairStats) {
	var out []Token
	var stack []string
	var stats RepairStats
	for _, t := range tokens {
		switch t.Type {
		case StartTag:
			out = append(out, t)
			if !t.SelfClosing && !voidElements[t.Name] {
				stack = append(stack, t.Name)
			}
		case EndTag:
			// Find the matching open element.
			idx := -1
			for i := len(stack) - 1; i >= 0; i-- {
				if stack[i] == t.Name {
					idx = i
					break
				}
			}
			if idx < 0 {
				stats.StrayEndTags++
				continue // drop stray end tag
			}
			// Implicitly close everything above the match.
			for i := len(stack) - 1; i > idx; i-- {
				out = append(out, Token{Type: EndTag, Name: stack[i]})
				stats.MisnestedTags++
			}
			out = append(out, Token{Type: EndTag, Name: t.Name})
			stack = stack[:idx]
		default:
			out = append(out, t)
		}
	}
	// Close everything still open.
	for i := len(stack) - 1; i >= 0; i-- {
		out = append(out, Token{Type: EndTag, Name: stack[i]})
		stats.UnclosedTags++
	}
	return out, stats
}

// Block is a run of text between block-level boundaries, the unit the
// boilerplate detector classifies.
type Block struct {
	// Text is the whitespace-normalized text of the block.
	Text string
	// Words is the number of whitespace-separated words.
	Words int
	// LinkedWords is the number of words inside <a> elements.
	LinkedWords int
	// Tag is the nearest enclosing block element name ("p", "div", "li"...).
	Tag string
	// Depth is the element nesting depth at the block's start.
	Depth int
}

// LinkDensity returns the fraction of words inside anchors, the single most
// discriminative shallow feature in Boilerpipe [15].
func (b *Block) LinkDensity() float64 {
	if b.Words == 0 {
		return 0
	}
	return float64(b.LinkedWords) / float64(b.Words)
}

// ExtractBlocks segments repaired tokens into text blocks with the shallow
// features boilerplate detection needs. Script/style content never reaches
// the blocks (the tokenizer marks those elements; their text is skipped).
func ExtractBlocks(tokens []Token) []Block {
	var blocks []Block
	var cur strings.Builder
	curWords, curLinked := 0, 0
	depth, linkDepth := 0, 0
	skip := 0 // inside script/style
	tag := "body"
	curTag := tag

	flush := func() {
		text := normalizeSpace(cur.String())
		if text != "" {
			blocks = append(blocks, Block{
				Text: text, Words: curWords, LinkedWords: curLinked,
				Tag: curTag, Depth: depth,
			})
		}
		cur.Reset()
		curWords, curLinked = 0, 0
		curTag = tag
	}

	for _, t := range tokens {
		switch t.Type {
		case StartTag:
			if rawTextElements[t.Name] {
				if !t.SelfClosing {
					skip++
				}
				continue
			}
			if t.Name == "a" {
				linkDepth++
			}
			if IsBlock(t.Name) {
				flush()
				tag = t.Name
				curTag = tag
			}
			if !t.SelfClosing && !voidElements[t.Name] {
				depth++
			}
		case EndTag:
			if rawTextElements[t.Name] {
				if skip > 0 {
					skip--
				}
				continue
			}
			if t.Name == "a" && linkDepth > 0 {
				linkDepth--
			}
			if IsBlock(t.Name) {
				flush()
			}
			if depth > 0 {
				depth--
			}
		case Text:
			if skip > 0 {
				continue
			}
			text := DecodeEntities(t.Data)
			words := len(strings.Fields(text))
			if words == 0 && strings.TrimSpace(text) == "" {
				// Pure whitespace: keep a single separator.
				if cur.Len() > 0 {
					cur.WriteByte(' ')
				}
				continue
			}
			cur.WriteString(text)
			curWords += words
			if linkDepth > 0 {
				curLinked += words
			}
		}
	}
	flush()
	return blocks
}

// normalizeSpace collapses runs of whitespace to single spaces and trims.
func normalizeSpace(s string) string {
	return strings.Join(strings.Fields(s), " ")
}

// StripMarkup is the "remove all markup" operator: tokenize, repair, and
// concatenate all text blocks. This is the fallback when boilerplate
// detection is disabled.
func StripMarkup(html string) string {
	tokens, _ := Repair(Tokenize(html))
	blocks := ExtractBlocks(tokens)
	parts := make([]string, len(blocks))
	for i, b := range blocks {
		parts[i] = b.Text
	}
	return strings.Join(parts, "\n")
}

// Link is an extracted hyperlink.
type Link struct {
	// Href is the raw href attribute value.
	Href string
	// Anchor is the normalized anchor text.
	Anchor string
}

// ExtractLinks returns every <a href=...> link with its anchor text.
func ExtractLinks(tokens []Token) []Link {
	var links []Link
	var anchor strings.Builder
	href := ""
	inA := false
	for _, t := range tokens {
		switch t.Type {
		case StartTag:
			if t.Name == "a" {
				if inA && href != "" {
					links = append(links, Link{Href: href, Anchor: normalizeSpace(anchor.String())})
				}
				inA = true
				href, _ = t.Attr("href")
				anchor.Reset()
			}
		case EndTag:
			if t.Name == "a" && inA {
				if href != "" {
					links = append(links, Link{Href: href, Anchor: normalizeSpace(anchor.String())})
				}
				inA = false
				href = ""
				anchor.Reset()
			}
		case Text:
			if inA {
				anchor.WriteString(DecodeEntities(t.Data))
			}
		}
	}
	if inA && href != "" {
		links = append(links, Link{Href: href, Anchor: normalizeSpace(anchor.String())})
	}
	return links
}

// Title returns the contents of the first <title> element, if any.
func Title(tokens []Token) string {
	inTitle := false
	var b strings.Builder
	for _, t := range tokens {
		switch t.Type {
		case StartTag:
			if t.Name == "title" {
				inTitle = true
			}
		case EndTag:
			if t.Name == "title" {
				return normalizeSpace(b.String())
			}
		case Text:
			if inTitle {
				b.WriteString(DecodeEntities(t.Data))
			}
		}
	}
	return normalizeSpace(b.String())
}
