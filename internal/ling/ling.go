// Package ling implements the linguistic analysis of §3.2/§4.3.1: each
// sentence is scanned "for occurrences of pronouns, negation, and
// parenthesis using different sets of regular expressions, and each found
// mention ... is added to the result set together with information on
// document ID, sentence ID, and start/end positions".
//
// Negation detection follows the paper exactly: "a rather simple method ...
// using a set of regular expressions to find mentions of the words not,
// nor, and neither" (§4.3.1). Pronouns are counted in six classes.
package ling

import (
	"regexp"
	"strconv"

	"webtextie/internal/annot"
	"webtextie/internal/nlp"
)

// The regex sets. All are word-bounded and case-insensitive, compiled once.
var (
	negationRe = regexp.MustCompile(`(?i)\b(not|nor|neither)\b`)
	parenRe    = regexp.MustCompile(`\(([^()]*)\)`)

	pronounRes = []*regexp.Regexp{
		regexp.MustCompile(`(?i)\b(he|she|it|they|we)\b`),
		regexp.MustCompile(`(?i)\b(him|her|them|us)\b`),
		regexp.MustCompile(`(?i)\b(his|its|their|our)\b`),
		regexp.MustCompile(`(?i)\b(this|that|these|those)\b`),
		regexp.MustCompile(`(?i)\b(which|who|whom|whose)\b`),
		regexp.MustCompile(`(?i)\b(itself|themselves|himself|herself)\b`),
	}
)

// PronounClassNames names the six classes in annotation values.
var PronounClassNames = []string{
	"subject", "object", "possessive", "demonstrative", "relative", "reflexive",
}

// pronounOrder scans classes from most specific to least (reflexive
// first, subject last) so reflexives win over shorter overlapping
// matches ("her" inside "herself"). A package-level array: a per-call
// slice literal would allocate in the hot path.
var pronounOrder = [6]int{5, 4, 3, 2, 1, 0}

// claim is one claimed pronoun span, used for overlap suppression.
type claim struct{ start, end int }

// sentenceAt returns the index of the sentence containing pos, -1 when
// pos falls between sentences.
func sentenceAt(sentences []nlp.Span, pos int) int {
	for i, s := range sentences {
		if pos >= s.Start && pos < s.End {
			return i
		}
	}
	return -1
}

// overlapsClaims reports whether [s, e) intersects any claimed span.
func overlapsClaims(claimed []claim, s, e int) bool {
	for _, c := range claimed {
		if s < c.end && c.start < e {
			return true
		}
	}
	return false
}

// Analyze scans a document's text and returns stand-off annotations for
// negation particles, pronouns (per class), and parenthesized text.
// Sentence indexes are assigned from the provided spans.
//
//lintx:hotpath linguistic scan, run once per extracted document (§4.3.1 pipeline; ROADMAP item 2).
func Analyze(docID, text string, sentences []nlp.Span) []annot.Annotation {
	out := make([]annot.Annotation, 0, 16)
	claimed := make([]claim, 0, 8)
	//lintx:ignore allocfree regexp Find APIs allocate their result slices; the PR8 arc replaces these with prefiltered scans
	for _, m := range negationRe.FindAllStringIndex(text, -1) {
		out = append(out, annot.Annotation{
			DocID: docID, Sentence: sentenceAt(sentences, m[0]), Start: m[0], End: m[1],
			Kind: annot.KindNegation, Value: text[m[0]:m[1]], Source: "ling",
		})
	}
	for _, class := range pronounOrder {
		//lintx:ignore allocfree regexp Find APIs allocate their result slices; the PR8 arc replaces these with prefiltered scans
		for _, m := range pronounRes[class].FindAllStringIndex(text, -1) {
			if overlapsClaims(claimed, m[0], m[1]) {
				continue
			}
			claimed = append(claimed, claim{m[0], m[1]})
			out = append(out, annot.Annotation{
				DocID: docID, Sentence: sentenceAt(sentences, m[0]), Start: m[0], End: m[1],
				Kind: annot.KindPronoun, Value: PronounClassNames[class],
				Source: "ling",
			})
		}
	}
	//lintx:ignore allocfree regexp Find APIs allocate their result slices; the PR8 arc replaces these with prefiltered scans
	for _, m := range parenRe.FindAllStringIndex(text, -1) {
		out = append(out, annot.Annotation{
			DocID: docID, Sentence: sentenceAt(sentences, m[0]), Start: m[0], End: m[1],
			Kind: annot.KindParen, Value: text[m[0]:m[1]], Source: "ling",
		})
	}
	return out
}

// DocStats are per-document linguistic measurements, the inputs to the
// Fig 6 distributions.
type DocStats struct {
	DocID string
	// Chars is the document length in bytes (Fig 6a).
	Chars int
	// Sentences is the sentence count.
	Sentences int
	// MeanSentenceLen is the mean sentence length in characters (Fig 6b).
	MeanSentenceLen float64
	// Negations, Parens count mentions (Fig 6c and §4.3.1).
	Negations, Parens int
	// Pronouns counts mentions per class.
	Pronouns [6]int
}

// NegPerSentence returns negations per sentence (incidence relative to
// document length is Chars-normalized by callers).
func (d DocStats) NegPerSentence() float64 {
	if d.Sentences == 0 {
		return 0
	}
	return float64(d.Negations) / float64(d.Sentences)
}

// Measure computes DocStats for a text using the package's analyzers.
func Measure(docID, text string) DocStats {
	sents := nlp.SplitSentences(text)
	anns := Analyze(docID, text, sents)
	st := DocStats{DocID: docID, Chars: len(text), Sentences: len(sents)}
	var total int
	for _, s := range sents {
		total += s.Len()
	}
	if len(sents) > 0 {
		st.MeanSentenceLen = float64(total) / float64(len(sents))
	}
	for _, a := range anns {
		switch a.Kind {
		case annot.KindNegation:
			st.Negations++
		case annot.KindParen:
			st.Parens++
		case annot.KindPronoun:
			for i, n := range PronounClassNames {
				if a.Value == n {
					st.Pronouns[i]++
				}
			}
		}
	}
	return st
}

// FormatSentenceID renders a sentence index for report output.
func FormatSentenceID(i int) string {
	if i < 0 {
		return "-"
	}
	return strconv.Itoa(i)
}
