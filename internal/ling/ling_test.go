package ling

import (
	"testing"

	"webtextie/internal/annot"
	"webtextie/internal/nlp"
)

func analyze(text string) []annot.Annotation {
	return Analyze("d", text, nlp.SplitSentences(text))
}

func count(anns []annot.Annotation, k annot.Kind) int {
	n := 0
	for _, a := range anns {
		if a.Kind == k {
			n++
		}
	}
	return n
}

func TestNegationDetection(t *testing.T) {
	anns := analyze("The drug did not work. Neither dose nor schedule mattered.")
	if got := count(anns, annot.KindNegation); got != 3 {
		t.Errorf("negations = %d, want 3 (not, neither, nor)", got)
	}
}

func TestNegationWordBoundary(t *testing.T) {
	anns := analyze("The notation denotes nothing important.")
	if got := count(anns, annot.KindNegation); got != 0 {
		t.Errorf("negations = %d in text without negation words", got)
	}
}

func TestNegationCaseInsensitive(t *testing.T) {
	anns := analyze("Not a single case. NOR that one.")
	if got := count(anns, annot.KindNegation); got != 2 {
		t.Errorf("negations = %d, want 2", got)
	}
}

func TestPronounClasses(t *testing.T) {
	anns := analyze("They saw him. This works, which itself was their idea.")
	classes := map[string]int{}
	for _, a := range anns {
		if a.Kind == annot.KindPronoun {
			classes[a.Value]++
		}
	}
	for _, want := range []string{"subject", "object", "demonstrative", "relative", "reflexive", "possessive"} {
		if classes[want] == 0 {
			t.Errorf("class %q not detected: %v", want, classes)
		}
	}
}

func TestReflexiveNotDoubleCounted(t *testing.T) {
	anns := analyze("The cell divides itself.")
	var values []string
	for _, a := range anns {
		if a.Kind == annot.KindPronoun {
			values = append(values, a.Value)
		}
	}
	if len(values) != 1 || values[0] != "reflexive" {
		t.Errorf("pronouns = %v, want [reflexive] only ('it' inside 'itself' must not match)", values)
	}
}

func TestParentheses(t *testing.T) {
	anns := analyze("The result (p < 0.01) was clear (see Fig. 2).")
	if got := count(anns, annot.KindParen); got != 2 {
		t.Errorf("parens = %d, want 2", got)
	}
	for _, a := range anns {
		if a.Kind == annot.KindParen {
			if a.Value[0] != '(' || a.Value[len(a.Value)-1] != ')' {
				t.Errorf("paren value %q not parenthesized", a.Value)
			}
		}
	}
}

func TestUnbalancedParensIgnored(t *testing.T) {
	anns := analyze("An open ( without close and a close ) alone.")
	// The regex requires a balanced non-nested pair; "( without close and a
	// close )" IS a balanced pair here, so exactly one match.
	if got := count(anns, annot.KindParen); got != 1 {
		t.Errorf("parens = %d", got)
	}
	if got := count(analyze("No parens at all."), annot.KindParen); got != 0 {
		t.Errorf("spurious paren match: %d", got)
	}
}

func TestSentenceIDsAssigned(t *testing.T) {
	text := "First has not one. Second has neither."
	anns := analyze(text)
	negs := []annot.Annotation{}
	for _, a := range anns {
		if a.Kind == annot.KindNegation {
			negs = append(negs, a)
		}
	}
	if len(negs) != 2 {
		t.Fatalf("negations = %d", len(negs))
	}
	if negs[0].Sentence != 0 || negs[1].Sentence != 1 {
		t.Errorf("sentence ids = %d, %d", negs[0].Sentence, negs[1].Sentence)
	}
}

func TestOffsetsMatchText(t *testing.T) {
	text := "They did not respond (sadly)."
	for _, a := range analyze(text) {
		if text[a.Start:a.End] != a.Value && a.Kind != annot.KindPronoun {
			t.Errorf("span %q != value %q", text[a.Start:a.End], a.Value)
		}
	}
}

func TestMeasure(t *testing.T) {
	text := "The drug did not work well. It was not (sadly) effective. Good."
	st := Measure("doc1", text)
	if st.DocID != "doc1" || st.Chars != len(text) {
		t.Errorf("stats header: %+v", st)
	}
	if st.Sentences != 3 {
		t.Errorf("sentences = %d", st.Sentences)
	}
	if st.Negations != 2 {
		t.Errorf("negations = %d", st.Negations)
	}
	if st.Parens != 1 {
		t.Errorf("parens = %d", st.Parens)
	}
	if st.Pronouns[0] != 1 { // "It"
		t.Errorf("subject pronouns = %d", st.Pronouns[0])
	}
	if st.MeanSentenceLen <= 0 {
		t.Error("mean sentence length not computed")
	}
	if got := st.NegPerSentence(); got < 0.6 || got > 0.7 {
		t.Errorf("neg/sentence = %v", got)
	}
}

func TestMeasureEmpty(t *testing.T) {
	st := Measure("e", "")
	if st.Sentences != 0 || st.NegPerSentence() != 0 || st.MeanSentenceLen != 0 {
		t.Errorf("empty stats: %+v", st)
	}
}

func TestFormatSentenceID(t *testing.T) {
	if FormatSentenceID(-1) != "-" || FormatSentenceID(3) != "3" {
		t.Error("FormatSentenceID broken")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	text := "The patients did not respond to the treatment (p < 0.01), which was itself surprising to them and their physicians. "
	for i := 0; i < 4; i++ {
		text += text
	}
	sents := nlp.SplitSentences(text)
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Analyze("d", text, sents)
	}
}
