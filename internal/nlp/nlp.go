// Package nlp provides the linguistic preprocessing operators of the
// paper's IE package (§3.1-3.2): sentence boundary detection and
// tokenization, both annotating stand-off spans over the input text.
//
// Sentence detection on web text is deliberately fallible in the same way
// the paper describes: input that arrives without sentence structure
// (boilerplate residue, keyword lists) yields absurdly long "sentences"
// (> 2000 characters), which downstream taggers must survive (§4.2).
package nlp

// Span is a half-open [Start, End) byte range over a document text.
type Span struct {
	Start, End int
}

// Len returns the span length in bytes.
func (s Span) Len() int { return s.End - s.Start }

// knownAbbrevs are common abbreviations whose trailing period does not end
// a sentence.
var knownAbbrevs = map[string]bool{
	"e.g": true, "i.e": true, "etc": true, "vs": true, "fig": true,
	"figs": true, "dr": true, "mr": true, "mrs": true, "prof": true,
	"al": true, "no": true, "vol": true, "approx": true, "ca": true,
	"cf": true, "resp": true, "jr": true, "st": true,
}

// SplitSentences returns the sentence spans of text. Boundaries are
// periods, question and exclamation marks followed by whitespace and an
// upper-case letter, digit or end of text, with abbreviation and
// single-letter-initial suppression. Text without terminal punctuation
// becomes one (possibly enormous) sentence. The returned slice is the
// only allocation.
//
//lintx:hotpath sentence boundary detection, run once per extracted document (ROADMAP item 2).
func SplitSentences(text string) []Span {
	n := len(text)
	// Web prose averages well over 64 bytes per sentence; the estimate
	// only has to make growth rare, not impossible.
	spans := make([]Span, 0, 1+n/64)
	start := 0
	i := 0
	for i < n {
		c := text[i]
		if c != '.' && c != '?' && c != '!' {
			i++
			continue
		}
		// Candidate boundary. Look behind for abbreviation/initial.
		if c == '.' {
			w := lastWord(text, i)
			if isKnownAbbrev(w) || len(w) == 1 && w[0] >= 'A' && w[0] <= 'Z' {
				i++
				continue
			}
			// Decimal number: digit on both sides.
			if i > 0 && i+1 < n && isDigit(text[i-1]) && isDigit(text[i+1]) {
				i++
				continue
			}
		}
		// Consume trailing closers (quotes, parens) after the punctuation.
		j := i + 1
		for j < n && (text[j] == ')' || text[j] == '"' || text[j] == '\'') {
			j++
		}
		if j >= n {
			spans, start = flushSpan(spans, text, start, j)
			i = j
			continue
		}
		if isSpace(text[j]) {
			k := j
			for k < n && isSpace(text[k]) {
				k++
			}
			if k >= n || isUpper(text[k]) || isDigit(text[k]) || text[k] == '(' {
				spans, start = flushSpan(spans, text, start, j)
				i = k
				continue
			}
		}
		i++
	}
	if start < n {
		spans, _ = flushSpan(spans, text, start, n)
	}
	return spans
}

// flushSpan appends [start, end) to spans with leading whitespace
// trimmed, returning the grown slice and the next sentence start. A
// package function rather than a closure: closures capturing locals heap
// allocate in the hot path (boxing check).
func flushSpan(spans []Span, text string, start, end int) ([]Span, int) {
	for start < end && isSpace(text[start]) {
		start++
	}
	if end > start {
		spans = append(spans, Span{Start: start, End: end})
	}
	return spans, end
}

// maxAbbrevLen is the length of the longest knownAbbrevs key ("approx").
const maxAbbrevLen = 6

// isKnownAbbrev reports whether w (case-insensitively) is a known
// abbreviation. The fold runs through a stack buffer and the map lookup
// uses the no-alloc string-conversion index form, so this replaces the
// former knownAbbrevs[strings.ToLower(w)] without its per-boundary
// allocation. lastWord only yields ASCII alnum-and-period runs, so the
// per-byte fold is exact.
func isKnownAbbrev(w string) bool {
	if len(w) == 0 || len(w) > maxAbbrevLen {
		return false
	}
	var buf [maxAbbrevLen]byte
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf[i] = c
	}
	return knownAbbrevs[string(buf[:len(w)])]
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isUpper(c byte) bool { return c >= 'A' && c <= 'Z' }
func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || isDigit(c)
}

// lastWord returns the alphanumeric run immediately before position i,
// including internal periods so that dotted abbreviations ("e.g", "i.e")
// are recovered whole.
func lastWord(text string, i int) string {
	j := i
	for j > 0 && (isAlnum(text[j-1]) || text[j-1] == '.' && j-1 > 0 && isAlnum(text[j-2])) {
		j--
	}
	return text[j:i]
}

// TokenSpan is a token with its byte span and surface form.
type TokenSpan struct {
	Span
	Text string
}

// Tokenize splits a text slice into tokens: alphanumeric runs (with
// internal hyphens kept, as biomedical names like "GAD-67" require) and
// single punctuation characters. Whitespace separates tokens. The
// returned slice is the only allocation.
//
//lintx:hotpath tokenizer, run once per sentence per document (ROADMAP item 2).
func Tokenize(text string, base int) []TokenSpan {
	// ~4 bytes per token on web prose; an estimate, not a bound.
	out := make([]TokenSpan, 0, 1+len(text)/4)
	i, n := 0, len(text)
	for i < n {
		c := text[i]
		if isSpace(c) {
			i++
			continue
		}
		if isAlnum(c) {
			j := i + 1
			for j < n {
				if isAlnum(text[j]) {
					j++
					continue
				}
				// Internal hyphen or period between alphanumerics stays in
				// the token (GAD-67, 1.5, U.S.A-style forms handled by the
				// sentence splitter already).
				if (text[j] == '-' || text[j] == '.') && j+1 < n && isAlnum(text[j+1]) {
					j += 2
					continue
				}
				break
			}
			out = append(out, TokenSpan{Span{base + i, base + j}, text[i:j]})
			i = j
			continue
		}
		out = append(out, TokenSpan{Span{base + i, base + i + 1}, text[i : i+1]})
		i++
	}
	return out
}

// SentenceTokens runs sentence splitting and per-sentence tokenization in
// one pass, returning parallel slices.
//
//lintx:hotpath per-document preprocessing entry used by the IE strategies (ROADMAP item 2).
func SentenceTokens(text string) ([]Span, [][]TokenSpan) {
	sents := SplitSentences(text)
	toks := make([][]TokenSpan, len(sents))
	for i, s := range sents {
		toks[i] = Tokenize(text[s.Start:s.End], s.Start)
	}
	return sents, toks
}
