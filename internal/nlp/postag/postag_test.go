package postag

import (
	"errors"
	"fmt"
	"testing"

	"webtextie/internal/rng"
	"webtextie/internal/textgen"
)

// trainingData converts generator gold docs into tagged sentences.
func trainingData(t testing.TB, n int, kind textgen.CorpusKind) [][]TaggedToken {
	t.Helper()
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 100, Diseases: 100}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	r := rng.New(7)
	var out [][]TaggedToken
	for i := 0; i < n; i++ {
		d := gen.Doc(r, kind, fmt.Sprint("d", i))
		for _, s := range d.Sentences {
			var sent []TaggedToken
			for _, tok := range s.Tokens {
				sent = append(sent, TaggedToken{Word: tok.Text, Tag: tok.Tag})
			}
			out = append(out, sent)
		}
	}
	return out
}

func TestTrainAndTagAccuracy(t *testing.T) {
	data := trainingData(t, 300, textgen.Medline)
	split := len(data) * 9 / 10
	tagger := Train(data[:split], DefaultConfig())
	var gold, pred [][]string
	for _, s := range data[split:] {
		words := make([]string, len(s))
		gs := make([]string, len(s))
		for i, tok := range s {
			words[i] = tok.Word
			gs[i] = tok.Tag
		}
		tags, err := tagger.Tag(words)
		if err != nil {
			t.Fatalf("Tag error: %v", err)
		}
		gold = append(gold, gs)
		pred = append(pred, tags)
	}
	acc := Accuracy(gold, pred)
	if acc < 0.90 {
		t.Fatalf("held-out accuracy = %.3f, want >= 0.90", acc)
	}
}

func TestOrder3BeatsOrder2OrClose(t *testing.T) {
	data := trainingData(t, 250, textgen.Medline)
	split := len(data) * 9 / 10
	eval := func(order int) float64 {
		cfg := DefaultConfig()
		cfg.Order = order
		tagger := Train(data[:split], cfg)
		var gold, pred [][]string
		for _, s := range data[split:] {
			words := make([]string, len(s))
			gs := make([]string, len(s))
			for i, tok := range s {
				words[i] = tok.Word
				gs[i] = tok.Tag
			}
			tags, err := tagger.Tag(words)
			if err != nil {
				continue
			}
			gold = append(gold, gs)
			pred = append(pred, tags)
		}
		return Accuracy(gold, pred)
	}
	a2, a3 := eval(2), eval(3)
	if a3 < a2-0.02 {
		t.Errorf("order-3 accuracy %.3f much worse than order-2 %.3f", a3, a2)
	}
}

func TestUnknownWordsViaSuffixAndShape(t *testing.T) {
	data := trainingData(t, 200, textgen.Medline)
	tagger := Train(data, DefaultConfig())
	// A never-seen gene-like symbol should still be tagged NNP thanks to
	// the shape model (acronym-with-digits).
	tags, err := tagger.Tag([]string{"The", "XQZW9", "gene", "regulates", "the", "pathway", "."})
	if err != nil {
		t.Fatal(err)
	}
	if tags[1] != "NNP" {
		t.Errorf("unknown gene symbol tagged %q, want NNP (tags: %v)", tags[1], tags)
	}
}

func TestTooLongSentenceCrashes(t *testing.T) {
	data := trainingData(t, 50, textgen.Medline)
	cfg := DefaultConfig()
	cfg.MaxTokens = 100
	tagger := Train(data, cfg)
	long := make([]string, 150)
	for i := range long {
		long[i] = "word"
	}
	_, err := tagger.Tag(long)
	if !errors.Is(err, ErrTooLong) {
		t.Fatalf("err = %v, want ErrTooLong", err)
	}
	// Disabled limit must not crash.
	cfg.MaxTokens = 0
	tagger2 := Train(data, cfg)
	if _, err := tagger2.Tag(long); err != nil {
		t.Fatalf("unlimited tagger errored: %v", err)
	}
}

func TestEmptyInput(t *testing.T) {
	tagger := Train(trainingData(t, 20, textgen.Medline), DefaultConfig())
	tags, err := tagger.Tag(nil)
	if err != nil || tags != nil {
		t.Errorf("empty input: %v, %v", tags, err)
	}
}

func TestTagsInventory(t *testing.T) {
	tagger := Train(trainingData(t, 50, textgen.Medline), DefaultConfig())
	if len(tagger.Tags()) < 10 {
		t.Errorf("only %d tags learned", len(tagger.Tags()))
	}
}

func TestDeterministicDecoding(t *testing.T) {
	data := trainingData(t, 100, textgen.Medline)
	tagger := Train(data, DefaultConfig())
	words := []string{"The", "patients", "were", "not", "treated", "with", "the", "drug", "."}
	a, _ := tagger.Tag(words)
	b, _ := tagger.Tag(words)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("decoding not deterministic")
		}
	}
}

func TestShapeClassifier(t *testing.T) {
	cases := map[string]string{
		"123": "num", "BRCA1": "alnum", "TLA": "acro", "LONGCAPS": "upper",
		"Word": "cap", "x-ray": "hyph", "word": "lower", "...": "other",
	}
	for w, want := range cases {
		if got := shape(w); got != want {
			t.Errorf("shape(%q) = %q, want %q", w, got, want)
		}
	}
}

func TestAccuracyHelper(t *testing.T) {
	gold := [][]string{{"A", "B"}, {"C"}}
	pred := [][]string{{"A", "X"}, {"C"}}
	if got := Accuracy(gold, pred); got != 2.0/3.0 {
		t.Errorf("Accuracy = %v", got)
	}
	if Accuracy(nil, nil) != 0 {
		t.Error("empty accuracy != 0")
	}
}

func TestLinearRuntimeShape(t *testing.T) {
	// Fig 3a: runtime "is, in principle, linear in the length of the text".
	// We verify decode cost grows no worse than ~quadratically but roughly
	// linearly: time(4n)/time(n) should be well below 16x. Using token
	// operations as a proxy (deterministic), we just confirm long inputs
	// complete and scale.
	data := trainingData(t, 100, textgen.Medline)
	cfg := DefaultConfig()
	cfg.MaxTokens = 0
	tagger := Train(data, cfg)
	mk := func(n int) []string {
		out := make([]string, n)
		words := []string{"the", "patient", "was", "treated", "with", "aspirin", "."}
		for i := range out {
			out[i] = words[i%len(words)]
		}
		return out
	}
	if _, err := tagger.Tag(mk(2000)); err != nil {
		t.Fatalf("long decode failed: %v", err)
	}
}

func BenchmarkTagOrder3(b *testing.B) {
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 300, Drugs: 100, Diseases: 100}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	r := rng.New(7)
	var data [][]TaggedToken
	for i := 0; i < 200; i++ {
		d := gen.Doc(r, textgen.Medline, fmt.Sprint("d", i))
		for _, s := range d.Sentences {
			var sent []TaggedToken
			for _, tok := range s.Tokens {
				sent = append(sent, TaggedToken{Word: tok.Text, Tag: tok.Tag})
			}
			data = append(data, sent)
		}
	}
	tagger := Train(data, DefaultConfig())
	words := []string{"The", "BRCA1", "gene", "significantly", "regulates", "the", "tumor", "response", "in", "patients", "with", "renal", "carcinoma", "."}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tagger.Tag(words)
	}
}

func TestTagOutputLengthProperty(t *testing.T) {
	tagger := Train(trainingData(t, 80, textgen.Medline), DefaultConfig())
	r := rng.New(71)
	words := []string{"the", "BRCA1", "gene", "regulates", "42", "X-ray", "growth", ".", "(", ")"}
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(40)
		in := make([]string, n)
		for i := range in {
			in[i] = words[r.Intn(len(words))]
		}
		tags, err := tagger.Tag(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(tags) != n {
			t.Fatalf("trial %d: %d tags for %d words", trial, len(tags), n)
		}
		for _, tag := range tags {
			if tag == "" {
				t.Fatalf("trial %d: empty tag", trial)
			}
		}
	}
}

func TestOrder2And3AgreeOnEasySentences(t *testing.T) {
	data := trainingData(t, 150, textgen.Medline)
	cfg2, cfg3 := DefaultConfig(), DefaultConfig()
	cfg2.Order = 2
	t2 := Train(data, cfg2)
	t3 := Train(data, cfg3)
	words := []string{"The", "patients", "were", "treated", "with", "the", "drug", "."}
	a, _ := t2.Tag(words)
	b, _ := t3.Tag(words)
	agree := 0
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
	}
	if agree < len(a)-1 {
		t.Errorf("orders disagree heavily: %v vs %v", a, b)
	}
}
