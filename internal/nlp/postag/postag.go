// Package postag implements the part-of-speech tagger of the paper's
// pipeline: a hidden Markov model in the style of MedPost (§4.2: "our
// part-of-speech tagger, MedPost, uses a Hidden Markov Model of order
// three"), with Viterbi decoding, a suffix-based unknown-word model, and
// the MedPost failure mode — crashes on degenerate, extremely long
// "sentences" from web text (Fig 3a discussion).
//
// Both order 2 (bigram transitions) and order 3 (trigram transitions) are
// supported; the ablation bench compares them.
package postag

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// TaggedToken is one training token.
type TaggedToken struct {
	Word, Tag string
}

// ErrTooLong reports the MedPost-style crash on degenerate input: "large
// runtime fluctuations ... and even occasional crashes, especially when the
// tagger is applied to very long sentences" (§4.2).
var ErrTooLong = errors.New("postag: sentence exceeds maximum length")

// Config controls training and decoding.
type Config struct {
	// Order is the HMM order: 2 (bigram) or 3 (trigram, MedPost-like).
	Order int
	// MaxTokens is the crash threshold; 0 disables the limit.
	MaxTokens int
	// SuffixLen is the suffix length of the unknown-word model.
	SuffixLen int
}

// DefaultConfig returns the paper-like configuration.
func DefaultConfig() Config {
	return Config{Order: 3, MaxTokens: 400, SuffixLen: 3}
}

// Tagger is a trained HMM tagger.
type Tagger struct {
	cfg   Config
	tags  []string
	tagIx map[string]int

	// logTrans2[i][j] = log P(t_j | t_i); logTrans3[i*T+j][k] = log P(t_k | t_i, t_j).
	logTrans2 [][]float64
	logTrans3 [][]float64

	// emission log-probs per tag: known words and suffix fallback.
	logEmit    []map[string]float64
	logSuffix  []map[string]float64
	logUnknown []float64 // per-tag floor for fully unknown shapes

	// shape priors: log P(tag | shape-class) for unknown words.
	logShape map[string][]float64
}

// Train estimates the model from gold-tagged sentences.
func Train(sentences [][]TaggedToken, cfg Config) *Tagger {
	if cfg.Order != 2 && cfg.Order != 3 {
		cfg.Order = 3
	}
	if cfg.SuffixLen <= 0 {
		cfg.SuffixLen = 3
	}
	t := &Tagger{cfg: cfg, tagIx: map[string]int{}}

	// Collect tagset.
	for _, s := range sentences {
		for _, tok := range s {
			if _, ok := t.tagIx[tok.Tag]; !ok {
				t.tagIx[tok.Tag] = len(t.tags)
				t.tags = append(t.tags, tok.Tag)
			}
		}
	}
	T := len(t.tags)

	// Counts.
	c2 := make([][]float64, T+1) // index T = sentence start
	for i := range c2 {
		c2[i] = make([]float64, T)
	}
	c3 := make([][]float64, (T+1)*(T+1))
	for i := range c3 {
		c3[i] = make([]float64, T)
	}
	emitCount := make([]map[string]float64, T)
	sufCount := make([]map[string]float64, T)
	shapeCount := map[string][]float64{}
	tagTotal := make([]float64, T)
	for i := 0; i < T; i++ {
		emitCount[i] = map[string]float64{}
		sufCount[i] = map[string]float64{}
	}

	for _, s := range sentences {
		prev1, prev2 := T, T // start symbols
		for _, tok := range s {
			ti := t.tagIx[tok.Tag]
			c2[prev1][ti]++
			c3[prev2*(T+1)+prev1][ti]++
			w := tok.Word
			emitCount[ti][w]++
			sufCount[ti][suffix(w, cfg.SuffixLen)]++
			sh := shape(w)
			if shapeCount[sh] == nil {
				shapeCount[sh] = make([]float64, T)
			}
			shapeCount[sh][ti]++
			tagTotal[ti]++
			prev2, prev1 = prev1, ti
		}
	}

	// Normalize to log-probs with add-one smoothing.
	t.logTrans2 = make([][]float64, T+1)
	for i := range t.logTrans2 {
		t.logTrans2[i] = make([]float64, T)
		var sum float64
		for j := 0; j < T; j++ {
			sum += c2[i][j]
		}
		for j := 0; j < T; j++ {
			t.logTrans2[i][j] = math.Log((c2[i][j] + 1) / (sum + float64(T)))
		}
	}
	if cfg.Order == 3 {
		t.logTrans3 = make([][]float64, (T+1)*(T+1))
		for i := range t.logTrans3 {
			t.logTrans3[i] = make([]float64, T)
			var sum float64
			for j := 0; j < T; j++ {
				sum += c3[i][j]
			}
			for j := 0; j < T; j++ {
				// Interpolate trigram with bigram (deleted interpolation,
				// fixed lambdas — adequate for a synthetic tagset).
				tri := (c3[i][j] + 0.5) / (sum + 0.5*float64(T))
				bi := math.Exp(t.logTrans2[i%(T+1)][j])
				t.logTrans3[i][j] = math.Log(0.7*tri + 0.3*bi)
			}
		}
	}

	t.logEmit = make([]map[string]float64, T)
	t.logSuffix = make([]map[string]float64, T)
	t.logUnknown = make([]float64, T)
	var grandTotal float64
	for i := 0; i < T; i++ {
		grandTotal += tagTotal[i]
	}
	for i := 0; i < T; i++ {
		t.logEmit[i] = make(map[string]float64, len(emitCount[i]))
		vocab := float64(len(emitCount[i])) + 1
		for w, c := range emitCount[i] {
			t.logEmit[i][w] = math.Log(c / (tagTotal[i] + vocab))
		}
		t.logSuffix[i] = make(map[string]float64, len(sufCount[i]))
		for s, c := range sufCount[i] {
			t.logSuffix[i][s] = math.Log(c / (tagTotal[i] + vocab))
		}
		t.logUnknown[i] = math.Log(1 / (tagTotal[i] + vocab))
	}
	t.logShape = map[string][]float64{}
	for sh, counts := range shapeCount {
		l := make([]float64, T)
		var sum float64
		for _, c := range counts {
			sum += c
		}
		for i, c := range counts {
			l[i] = math.Log((c + 0.5) / (sum + 0.5*float64(T)))
		}
		t.logShape[sh] = l
	}
	return t
}

// Tags returns the tag inventory in training order.
func (t *Tagger) Tags() []string { return t.tags }

func suffix(w string, n int) string {
	if len(w) <= n {
		return strings.ToLower(w)
	}
	return strings.ToLower(w[len(w)-n:])
}

// shape classifies a word's surface shape, the signal unknown-word tagging
// leans on (and, for NER downstream, the very signal that makes TLAs look
// like gene symbols).
func shape(w string) string {
	hasDigit, hasUpper, hasLower, hasHyphen := false, false, false, false
	for i := 0; i < len(w); i++ {
		c := w[i]
		switch {
		case c >= '0' && c <= '9':
			hasDigit = true
		case c >= 'A' && c <= 'Z':
			hasUpper = true
		case c >= 'a' && c <= 'z':
			hasLower = true
		case c == '-':
			hasHyphen = true
		}
	}
	switch {
	case hasDigit && !hasUpper && !hasLower:
		return "num"
	case hasDigit:
		return "alnum"
	case hasUpper && !hasLower && len(w) <= 4:
		return "acro"
	case hasUpper && !hasLower:
		return "upper"
	case hasUpper:
		return "cap"
	case hasHyphen:
		return "hyph"
	case hasLower:
		return "lower"
	default:
		return "other"
	}
}

// emitLog returns log P(word | tag) using the known-word table with
// suffix/shape fallback for unknown words.
func (t *Tagger) emitLog(ti int, w string) float64 {
	if lp, ok := t.logEmit[ti][w]; ok {
		return lp
	}
	lp := t.logUnknown[ti]
	if slp, ok := t.logSuffix[ti][suffix(w, t.cfg.SuffixLen)]; ok {
		lp = slp
	}
	if shp, ok := t.logShape[shape(w)]; ok {
		lp += 0.5 * shp[ti]
	}
	return lp
}

// emitRow fills dst with log P(word | tag) for every tag, hoisting the
// suffix/shape computations out of the per-tag loop. This is the hot path
// of Viterbi decoding.
func (t *Tagger) emitRow(w string, dst []float64) {
	suf := suffix(w, t.cfg.SuffixLen)
	shp := t.logShape[shape(w)]
	for ti := range dst {
		if lp, ok := t.logEmit[ti][w]; ok {
			dst[ti] = lp
			continue
		}
		lp := t.logUnknown[ti]
		if slp, ok := t.logSuffix[ti][suf]; ok {
			lp = slp
		}
		if shp != nil {
			lp += 0.5 * shp[ti]
		}
		dst[ti] = lp
	}
}

// Tag decodes the most likely tag sequence for words via Viterbi. It
// returns ErrTooLong for sentences over the configured limit.
func (t *Tagger) Tag(words []string) ([]string, error) {
	if t.cfg.MaxTokens > 0 && len(words) > t.cfg.MaxTokens {
		return nil, fmt.Errorf("%w: %d tokens (limit %d)", ErrTooLong, len(words), t.cfg.MaxTokens)
	}
	if len(words) == 0 {
		return nil, nil
	}
	if t.cfg.Order == 3 {
		return t.viterbi3(words)
	}
	return t.viterbi2(words)
}

// viterbi2 decodes with bigram transitions: O(n·T²).
func (t *Tagger) viterbi2(words []string) ([]string, error) {
	T := len(t.tags)
	n := len(words)
	delta := make([]float64, T)
	back := make([][]int16, n)
	em := make([]float64, T)
	t.emitRow(words[0], em)
	for j := 0; j < T; j++ {
		delta[j] = t.logTrans2[T][j] + em[j]
	}
	next := make([]float64, T)
	for i := 1; i < n; i++ {
		back[i] = make([]int16, T)
		t.emitRow(words[i], em)
		for j := 0; j < T; j++ {
			best := math.Inf(-1)
			var arg int16
			for k := 0; k < T; k++ {
				if v := delta[k] + t.logTrans2[k][j]; v > best {
					best = v
					arg = int16(k)
				}
			}
			next[j] = best + em[j]
			back[i][j] = arg
		}
		delta, next = next, delta
	}
	bestJ := 0
	for j := 1; j < T; j++ {
		if delta[j] > delta[bestJ] {
			bestJ = j
		}
	}
	out := make([]string, n)
	for i := n - 1; i >= 0; i-- {
		out[i] = t.tags[bestJ]
		if i > 0 {
			bestJ = int(back[i][bestJ])
		}
	}
	return out, nil
}

// viterbi3 decodes with trigram transitions over tag-pair states, using
// dense score arrays over the (prev, cur) state space — state (a, b) with
// a ∈ [0..T] (T = start symbol) and b ∈ [0..T-1] is encoded as a*T + b.
func (t *Tagger) viterbi3(words []string) ([]string, error) {
	T := len(t.tags)
	n := len(words)
	S := T + 1 // tag alphabet incl. start
	nStates := S * T

	neg := math.Inf(-1)
	cur := make([]float64, nStates)
	next := make([]float64, nStates)
	for i := range cur {
		cur[i] = neg
	}
	em := make([]float64, T)
	t.emitRow(words[0], em)
	for j := 0; j < T; j++ {
		cur[T*T+j] = t.logTrans3[T*S+T][j] + em[j] // (start, j)
	}
	backptr := make([][]int32, n)
	for i := 1; i < n; i++ {
		bp := make([]int32, nStates)
		for k := range next {
			next[k] = neg
			bp[k] = -1
		}
		t.emitRow(words[i], em)
		for st, score := range cur {
			if score == neg {
				continue
			}
			a := st / T // previous-previous tag (or start)
			b := st % T // previous tag
			row := t.logTrans3[a*S+b]
			base := b * T
			for j := 0; j < T; j++ {
				v := score + row[j] + em[j]
				if v > next[base+j] {
					next[base+j] = v
					bp[base+j] = int32(st)
				}
			}
		}
		backptr[i] = bp
		cur, next = next, cur
	}
	// Best final state.
	bestScore := neg
	bestSt := -1
	for st, score := range cur {
		if score > bestScore {
			bestScore = score
			bestSt = st
		}
	}
	if bestSt < 0 {
		return nil, errors.New("postag: no path")
	}
	out := make([]string, n)
	st := int32(bestSt)
	for i := n - 1; i >= 0; i-- {
		out[i] = t.tags[int(st)%T]
		if i > 0 {
			st = backptr[i][st]
		}
	}
	return out, nil
}

// Accuracy scores predicted against gold tags, ignoring length mismatches.
func Accuracy(gold, pred [][]string) float64 {
	var hit, total int
	for i := range gold {
		if i >= len(pred) {
			break
		}
		for j := range gold[i] {
			if j >= len(pred[i]) {
				break
			}
			total++
			if gold[i][j] == pred[i][j] {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
