package nlp

import (
	"strings"
	"testing"
	"testing/quick"
)

func sentStrings(text string) []string {
	spans := SplitSentences(text)
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = text[s.Start:s.End]
	}
	return out
}

func TestSplitSimple(t *testing.T) {
	got := sentStrings("First sentence. Second one! Third? Yes.")
	want := []string{"First sentence.", "Second one!", "Third?", "Yes."}
	if len(got) != len(want) {
		t.Fatalf("got %d sentences: %q", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("sentence %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSplitAbbreviations(t *testing.T) {
	got := sentStrings("The dose was low, e.g. 5 mg. Results follow.")
	if len(got) != 2 {
		t.Fatalf("abbreviation split wrong: %q", got)
	}
	got = sentStrings("See Fig. 2 for details. Next sentence.")
	if len(got) != 2 {
		t.Fatalf("Fig. split wrong: %q", got)
	}
}

func TestSplitInitials(t *testing.T) {
	got := sentStrings("Written by J. Smith. The end.")
	if len(got) != 2 {
		t.Fatalf("initials split wrong: %q", got)
	}
}

func TestSplitDecimalNumbers(t *testing.T) {
	got := sentStrings("The value was 3.14 exactly. Done.")
	if len(got) != 2 {
		t.Fatalf("decimal split wrong: %q", got)
	}
}

func TestSplitNoTerminal(t *testing.T) {
	// Degenerate web input: no sentence structure at all → one huge span.
	text := strings.Repeat("home login menu ", 300)
	got := SplitSentences(text)
	if len(got) != 1 {
		t.Fatalf("structureless input split into %d spans", len(got))
	}
	if got[0].Len() < 2000 {
		t.Errorf("degenerate sentence only %d chars", got[0].Len())
	}
}

func TestSplitLowercaseContinuation(t *testing.T) {
	got := sentStrings("The approx. value is fine. next word lowercase is not a boundary.")
	// "fine." followed by lowercase must NOT split.
	if len(got) != 1 {
		t.Fatalf("lowercase continuation split: %q", got)
	}
}

func TestSpansCoverOriginalText(t *testing.T) {
	text := "Alpha beta. Gamma delta? Epsilon (zeta). Final"
	for _, s := range SplitSentences(text) {
		if s.Start < 0 || s.End > len(text) || s.Start >= s.End {
			t.Fatalf("bad span %+v", s)
		}
	}
}

func TestSplitEmptyAndWhitespace(t *testing.T) {
	if got := SplitSentences(""); len(got) != 0 {
		t.Errorf("empty text: %v", got)
	}
	if got := SplitSentences("   \n\t  "); len(got) != 0 {
		t.Errorf("whitespace text: %v", got)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("The GAD-67 dose (5.5 mg) works.", 0)
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Text)
	}
	want := []string{"The", "GAD-67", "dose", "(", "5.5", "mg", ")", "works", "."}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("tokens = %v, want %v", texts, want)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "ab cd."
	for _, tk := range Tokenize(text, 10) {
		if text[tk.Start-10:tk.End-10] != tk.Text {
			t.Fatalf("offset mismatch for %+v", tk)
		}
	}
}

func TestTokenizeProperty(t *testing.T) {
	// Property: concatenation of token texts equals input minus whitespace.
	err := quick.Check(func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r < 33 || r > 126 {
				return ' '
			}
			return r
		}, s)
		var b strings.Builder
		for _, tk := range Tokenize(clean, 0) {
			b.WriteString(tk.Text)
		}
		return b.String() == strings.Join(strings.Fields(clean), "")
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSentenceTokens(t *testing.T) {
	text := "One two. Three four five."
	sents, toks := SentenceTokens(text)
	if len(sents) != 2 || len(toks) != 2 {
		t.Fatalf("sents=%d toks=%d", len(sents), len(toks))
	}
	if len(toks[0]) != 3 || len(toks[1]) != 4 {
		t.Fatalf("token counts: %d, %d", len(toks[0]), len(toks[1]))
	}
	// Token spans must be inside their sentence span.
	for i, s := range sents {
		for _, tk := range toks[i] {
			if tk.Start < s.Start || tk.End > s.End {
				t.Fatalf("token %+v outside sentence %+v", tk, s)
			}
		}
	}
}

func BenchmarkSplitSentences(b *testing.B) {
	text := strings.Repeat("The patient was treated with the drug. The response was significant. ", 100)
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		_ = SplitSentences(text)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("The BRCA1 gene regulates tumor growth in patients. ", 100)
	b.SetBytes(int64(len(text)))
	for i := 0; i < b.N; i++ {
		_ = Tokenize(text, 0)
	}
}
