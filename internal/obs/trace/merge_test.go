package trace

import (
	"strings"
	"testing"
)

// recorderWith starts and finishes n traces with the given key prefix and
// returns the recorder.
func recorderWith(seed uint64, prefix string, n int) *Recorder {
	r := NewRecorder(DefaultConfig(seed))
	for i := 0; i < n; i++ {
		at := int64(10 * (i + 1))
		ctx := r.Start("fetch", prefix+string(rune('a'+i)), at)
		ctx.End(at + 5)
		ctx.Finish(at + 5)
	}
	return r
}

func TestMergeRenumbersStartIndexes(t *testing.T) {
	a := recorderWith(1, "a/", 3).Snapshot()
	b := recorderWith(1, "b/", 4).Snapshot()
	m := Merge(a, b)

	if m.StartSeq != a.StartSeq+b.StartSeq {
		t.Fatalf("merged StartSeq = %d, want %d", m.StartSeq, a.StartSeq+b.StartSeq)
	}
	if len(m.Traces) != len(a.Traces)+len(b.Traces) {
		t.Fatalf("merged %d traces, want %d", len(m.Traces), len(a.Traces)+len(b.Traces))
	}
	// Shard 0 keeps its indexes; shard 1 is rebased past shard 0's full
	// start sequence; the concatenation is sorted by StartIndex.
	for i, tr := range m.Traces {
		if i > 0 && m.Traces[i-1].StartIndex >= tr.StartIndex {
			t.Fatalf("merged traces not strictly ordered at %d", i)
		}
	}
	for i, tr := range a.Traces {
		if m.Traces[i].StartIndex != tr.StartIndex {
			t.Errorf("shard-0 trace %d renumbered: %d -> %d", i, tr.StartIndex, m.Traces[i].StartIndex)
		}
	}
	for i, tr := range b.Traces {
		if got, want := m.Traces[len(a.Traces)+i].StartIndex, tr.StartIndex+a.StartSeq; got != want {
			t.Errorf("shard-1 trace %d index = %d, want %d", i, got, want)
		}
	}
}

func TestMergeIsDeepCopy(t *testing.T) {
	a := recorderWith(1, "a/", 2).Snapshot()
	m := Merge(a, recorderWith(1, "b/", 2).Snapshot())
	m.Traces[0].Key = "mutated"
	m.Traces[0].Spans[0].Name = "mutated"
	if a.Traces[0].Key == "mutated" || a.Traces[0].Spans[0].Name == "mutated" {
		t.Error("mutating the merged snapshot reached the input snapshot")
	}
}

func TestMergeSumsStatsAndConcatenatesMarks(t *testing.T) {
	ra := recorderWith(1, "a/", 2)
	ra.Mark("phase.one", 100)
	rb := recorderWith(1, "b/", 2)
	rb.Mark("phase.two", 200)
	a, b := ra.Snapshot(), rb.Snapshot()
	a.Stats.Dropped, a.Stats.PinDropped = 3, 1
	b.Stats.Dropped, b.Stats.DroppedActive = 4, 2

	m := Merge(a, b)
	if m.Stats.Dropped != 7 || m.Stats.DroppedActive != 2 || m.Stats.PinDropped != 1 {
		t.Errorf("merged stats = %+v, want sums", m.Stats)
	}
	if len(m.Marks) != 2 || m.Marks[0].Name != "phase.one" || m.Marks[1].Name != "phase.two" {
		t.Errorf("merged marks = %+v, want shard-order concatenation", m.Marks)
	}
}

func TestMergeSkipsNilAndMergesNothing(t *testing.T) {
	m := Merge(nil, recorderWith(1, "a/", 1).Snapshot(), nil)
	if len(m.Traces) != 1 {
		t.Fatalf("merged %d traces, want 1", len(m.Traces))
	}
	empty := Merge()
	if empty.StartSeq != 0 || len(empty.Traces) != 0 {
		t.Errorf("empty merge = %+v, want zero snapshot", empty)
	}
	// An empty merged snapshot must still export without panicking.
	_ = empty.Text()
}

func TestMergedSnapshotExports(t *testing.T) {
	m := Merge(recorderWith(1, "a/", 2).Snapshot(), recorderWith(1, "b/", 2).Snapshot())
	text := m.Text()
	for _, key := range []string{"a/a", "a/b", "b/a", "b/b"} {
		if !strings.Contains(text, key) {
			t.Errorf("merged text export missing trace key %q", key)
		}
	}
	if _, err := m.JSON(); err != nil {
		t.Errorf("merged JSON export: %v", err)
	}
	if _, err := m.Chrome(); err != nil {
		t.Errorf("merged Chrome export: %v", err)
	}
}
