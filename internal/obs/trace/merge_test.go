package trace

import (
	"strings"
	"testing"
)

// recorderWith starts and finishes n traces with the given key prefix and
// returns the recorder.
func recorderWith(seed uint64, prefix string, n int) *Recorder {
	r := NewRecorder(DefaultConfig(seed))
	for i := 0; i < n; i++ {
		at := int64(10 * (i + 1))
		ctx := r.Start("fetch", prefix+string(rune('a'+i)), at)
		ctx.End(at + 5)
		ctx.Finish(at + 5)
	}
	return r
}

func TestMergeRenumbersStartIndexes(t *testing.T) {
	a := recorderWith(1, "a/", 3).Snapshot()
	b := recorderWith(1, "b/", 4).Snapshot()
	m := Merge(a, b)

	if m.StartSeq != a.StartSeq+b.StartSeq {
		t.Fatalf("merged StartSeq = %d, want %d", m.StartSeq, a.StartSeq+b.StartSeq)
	}
	if len(m.Traces) != len(a.Traces)+len(b.Traces) {
		t.Fatalf("merged %d traces, want %d", len(m.Traces), len(a.Traces)+len(b.Traces))
	}
	// Shard 0 keeps its indexes; shard 1 is rebased past shard 0's full
	// start sequence; the concatenation is sorted by StartIndex.
	for i, tr := range m.Traces {
		if i > 0 && m.Traces[i-1].StartIndex >= tr.StartIndex {
			t.Fatalf("merged traces not strictly ordered at %d", i)
		}
	}
	for i, tr := range a.Traces {
		if m.Traces[i].StartIndex != tr.StartIndex {
			t.Errorf("shard-0 trace %d renumbered: %d -> %d", i, tr.StartIndex, m.Traces[i].StartIndex)
		}
	}
	for i, tr := range b.Traces {
		if got, want := m.Traces[len(a.Traces)+i].StartIndex, tr.StartIndex+a.StartSeq; got != want {
			t.Errorf("shard-1 trace %d index = %d, want %d", i, got, want)
		}
	}
}

func TestMergeIsDeepCopy(t *testing.T) {
	a := recorderWith(1, "a/", 2).Snapshot()
	m := Merge(a, recorderWith(1, "b/", 2).Snapshot())
	m.Traces[0].Key = "mutated"
	m.Traces[0].Spans[0].Name = "mutated"
	if a.Traces[0].Key == "mutated" || a.Traces[0].Spans[0].Name == "mutated" {
		t.Error("mutating the merged snapshot reached the input snapshot")
	}
}

func TestMergeSumsStatsAndConcatenatesMarks(t *testing.T) {
	ra := recorderWith(1, "a/", 2)
	ra.Mark("phase.one", 100)
	rb := recorderWith(1, "b/", 2)
	rb.Mark("phase.two", 200)
	a, b := ra.Snapshot(), rb.Snapshot()
	a.Stats.Dropped, a.Stats.PinDropped = 3, 1
	b.Stats.Dropped, b.Stats.DroppedActive = 4, 2

	m := Merge(a, b)
	if m.Stats.Dropped != 7 || m.Stats.DroppedActive != 2 || m.Stats.PinDropped != 1 {
		t.Errorf("merged stats = %+v, want sums", m.Stats)
	}
	if len(m.Marks) != 2 || m.Marks[0].Name != "phase.one" || m.Marks[1].Name != "phase.two" {
		t.Errorf("merged marks = %+v, want shard-order concatenation", m.Marks)
	}
}

func TestMergeSkipsNilAndMergesNothing(t *testing.T) {
	m := Merge(nil, recorderWith(1, "a/", 1).Snapshot(), nil)
	if len(m.Traces) != 1 {
		t.Fatalf("merged %d traces, want 1", len(m.Traces))
	}
	empty := Merge()
	if empty.StartSeq != 0 || len(empty.Traces) != 0 {
		t.Errorf("empty merge = %+v, want zero snapshot", empty)
	}
	// An empty merged snapshot must still export without panicking.
	_ = empty.Text()
}

// TestMergeSingleShardIsIdentity pins the DoP-1 degenerate case: a fleet
// of one shard must export exactly what the shard exported alone.
func TestMergeSingleShardIsIdentity(t *testing.T) {
	a := recorderWith(1, "a/", 3).Snapshot()
	m := Merge(a)
	if m.Text() != a.Text() {
		t.Error("single-shard merge changed the text export")
	}
	mj, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(mj) != string(aj) {
		t.Error("single-shard merge changed the JSON export")
	}
}

// TestMergeEmptyShardPillars covers shards that traced nothing: a fresh
// recorder's snapshot must be absorbed without disturbing the export,
// wherever it sits in the shard order.
func TestMergeEmptyShardPillars(t *testing.T) {
	empty := NewRecorder(DefaultConfig(1)).Snapshot()
	if empty.StartSeq != 0 || len(empty.Traces) != 0 {
		t.Fatalf("fresh recorder snapshot not empty: %+v", empty)
	}
	a := recorderWith(1, "a/", 2).Snapshot()
	b := recorderWith(1, "b/", 2).Snapshot()
	want := Merge(a, b).Text()
	for name, m := range map[string]*Snapshot{
		"empty-first":  Merge(empty, a, b),
		"empty-middle": Merge(a, empty, b),
		"empty-last":   Merge(a, b, empty),
	} {
		if m.Text() != want {
			t.Errorf("%s: empty shard pillar changed the merged export", name)
		}
		if m.StartSeq != a.StartSeq+b.StartSeq {
			t.Errorf("%s: merged StartSeq = %d, want %d", name, m.StartSeq, a.StartSeq+b.StartSeq)
		}
	}
	allEmpty := Merge(NewRecorder(DefaultConfig(1)).Snapshot(), NewRecorder(DefaultConfig(2)).Snapshot())
	if allEmpty.Text() != "" && len(allEmpty.Traces) != 0 {
		t.Errorf("all-empty merge produced traces: %+v", allEmpty.Traces)
	}
}

// TestMergeFencedShardDegraded models a degraded fleet: a fenced shard
// contributes no snapshot (nil), and the merge must render exactly the
// surviving shards' fleet — the fenced hole is invisible to the export.
func TestMergeFencedShardDegraded(t *testing.T) {
	s0 := recorderWith(1, "s0/", 2).Snapshot()
	s2 := recorderWith(1, "s2/", 2).Snapshot()
	degraded := Merge(s0, nil, s2)
	if degraded.Text() != Merge(s0, s2).Text() {
		t.Error("fenced-shard merge differs from the surviving-shards merge")
	}
	for _, key := range []string{"s0/a", "s0/b", "s2/a", "s2/b"} {
		if !strings.Contains(degraded.Text(), key) {
			t.Errorf("degraded merge lost surviving trace %q", key)
		}
	}
	if degraded.StartSeq != s0.StartSeq+s2.StartSeq {
		t.Errorf("degraded StartSeq = %d, want %d", degraded.StartSeq, s0.StartSeq+s2.StartSeq)
	}
}

func TestMergedSnapshotExports(t *testing.T) {
	m := Merge(recorderWith(1, "a/", 2).Snapshot(), recorderWith(1, "b/", 2).Snapshot())
	text := m.Text()
	for _, key := range []string{"a/a", "a/b", "b/a", "b/b"} {
		if !strings.Contains(text, key) {
			t.Errorf("merged text export missing trace key %q", key)
		}
	}
	if _, err := m.JSON(); err != nil {
		t.Errorf("merged JSON export: %v", err)
	}
	if _, err := m.Chrome(); err != nil {
		t.Errorf("merged Chrome export: %v", err)
	}
}
