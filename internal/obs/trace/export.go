package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Exporters render a Snapshot — never the live recorder — so every format
// sees one consistent, canonically ordered view. Text and JSON are the
// golden-testable forms; Chrome is the trace_event JSON Perfetto and
// chrome://tracing load (virtual-clock milliseconds mapped onto the
// microsecond ts axis).

// Filter selects a subset of a snapshot's traces. Zero value keeps all.
type Filter struct {
	// Key keeps traces whose key (URL, record key) contains the substring.
	Key string
	// Op keeps traces with a span or event name containing the substring.
	Op string
	// ErrClass keeps traces that recorded the error class.
	ErrClass string
	// PinnedOnly keeps flight-recorder traces.
	PinnedOnly bool
	// Limit caps the number of traces (0 = unlimited), applied after the
	// other predicates, keeping the first matches in StartIndex order.
	Limit int
}

func (f Filter) match(t *Trace) bool {
	if f.Key != "" && !strings.Contains(t.Key, f.Key) {
		return false
	}
	if f.ErrClass != "" && !t.HasErrClass(f.ErrClass) {
		return false
	}
	if f.PinnedOnly && !t.Pinned {
		return false
	}
	if f.Op != "" {
		found := false
		for _, sp := range t.Spans {
			if strings.Contains(sp.Name, f.Op) {
				found = true
				break
			}
			for _, ev := range sp.Events {
				if strings.Contains(ev.Name, f.Op) {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Filter returns a shallow-copied snapshot holding only matching traces.
func (s *Snapshot) Filter(f Filter) *Snapshot {
	out := &Snapshot{StartSeq: s.StartSeq, Stats: s.Stats, Marks: s.Marks}
	for _, t := range s.Traces {
		if !f.match(t) {
			continue
		}
		out.Traces = append(out.Traces, t)
		if f.Limit > 0 && len(out.Traces) >= f.Limit {
			break
		}
	}
	return out
}

// Find returns the snapshot's trace with the given ID, or nil.
func (s *Snapshot) Find(id TraceID) *Trace {
	for _, t := range s.Traces {
		if t.ID == id {
			return t
		}
	}
	return nil
}

// Pinned returns the flight-recorder traces.
func (s *Snapshot) Pinned() []*Trace {
	var out []*Trace
	for _, t := range s.Traces {
		if t.Pinned {
			out = append(out, t)
		}
	}
	return out
}

func fmtAttrs(b *strings.Builder, attrs []Attr) {
	for _, a := range attrs {
		fmt.Fprintf(b, " %s=%s", a.Key, a.Value)
	}
}

// Text renders the snapshot deterministically: traces in StartIndex order,
// each span tree indented with parents before children (siblings in
// canonical span order), events inline under their span:
//
//	trace 9a3f... key=http://h12/p3 [0-61200ms] spans=4 err=[retry_exhausted] pinned
//	  span crawler.url [0-61200ms]
//	    @0ms frontier.inject depth=0 host=h12
//	    span crawler.fetch.attempt [200-2900ms] attempt=0
//	      @2900ms error class=retry_exhausted
func (s *Snapshot) Text() string {
	var b strings.Builder
	for _, t := range s.Traces {
		fmt.Fprintf(&b, "trace %s key=%s [%d-%dms] spans=%d", t.ID, t.Key, t.StartMs, t.EndMs, len(t.Spans))
		if len(t.ErrClasses) > 0 {
			fmt.Fprintf(&b, " err=%v", t.ErrClasses)
		}
		if t.Pinned {
			b.WriteString(" pinned")
		}
		if !t.Done {
			b.WriteString(" active")
		}
		b.WriteByte('\n')
		writeSpanTree(&b, t, 0, "  ")
	}
	for _, m := range s.Marks {
		fmt.Fprintf(&b, "mark %s @%dms", m.Name, m.AtMs)
		fmtAttrs(&b, m.Attrs)
		b.WriteByte('\n')
	}
	if s.Stats != (SnapshotStats{}) {
		fmt.Fprintf(&b, "stats dropped=%d dropped_active=%d pin_dropped=%d\n",
			s.Stats.Dropped, s.Stats.DroppedActive, s.Stats.PinDropped)
	}
	return b.String()
}

// writeSpanTree prints the spans whose parent is parentID, recursively.
// Spans already sit in canonical order, so children print in that order.
func writeSpanTree(b *strings.Builder, t *Trace, parent SpanID, indent string) {
	for _, sp := range t.Spans {
		if sp.Parent != parent {
			continue
		}
		fmt.Fprintf(b, "%sspan %s [%d-%dms]", indent, sp.Name, sp.StartMs, sp.EndMs)
		fmtAttrs(b, sp.Attrs)
		b.WriteByte('\n')
		for _, ev := range sp.Events {
			fmt.Fprintf(b, "%s  @%dms %s", indent, ev.AtMs, ev.Name)
			fmtAttrs(b, ev.Attrs)
			b.WriteByte('\n')
		}
		writeSpanTree(b, t, sp.ID, indent+"  ")
	}
}

// JSON renders the snapshot as deterministic indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// chromeEvent is one entry of the trace_event format ("X" complete spans,
// "i" instants, "M" metadata). See the Chromium Trace Event Format spec.
type chromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TsUs  int64             `json:"ts"`
	DurUs int64             `json:"dur,omitempty"`
	Pid   int64             `json:"pid"`
	Tid   int64             `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

func attrArgs(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	args := make(map[string]string, len(attrs))
	for _, a := range attrs {
		args[a.Key] = a.Value
	}
	return args
}

// Chrome renders the snapshot as Chrome trace_event JSON, loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing. Each trace maps to one
// thread row (tid = StartIndex+1); spans become complete ("X") events and
// span events become instants ("i") on the virtual-clock timeline.
func (s *Snapshot) Chrome() ([]byte, error) {
	type doc struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}
	out := doc{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, t := range s.Traces {
		tid := int64(t.StartIndex) + 1
		name := t.Key
		if t.Pinned {
			name = "[pinned] " + name
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Phase: "M", Pid: 1, Tid: tid,
			Args: map[string]string{"name": name},
		})
		for _, sp := range t.Spans {
			dur := (sp.EndMs - sp.StartMs) * 1000
			if dur <= 0 {
				dur = 1 // zero-width spans are invisible in Perfetto
			}
			args := attrArgs(sp.Attrs)
			if args == nil {
				args = map[string]string{}
			}
			args["trace_id"] = t.ID.String()
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sp.Name, Cat: "span", Phase: "X",
				TsUs: sp.StartMs * 1000, DurUs: dur, Pid: 1, Tid: tid, Args: args,
			})
			for _, ev := range sp.Events {
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: ev.Name, Cat: "event", Phase: "i", Scope: "t",
					TsUs: ev.AtMs * 1000, Pid: 1, Tid: tid, Args: attrArgs(ev.Attrs),
				})
			}
		}
	}
	for _, m := range s.Marks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: m.Name, Cat: "mark", Phase: "i", Scope: "g",
			TsUs: m.AtMs * 1000, Pid: 1, Tid: 0, Args: attrArgs(m.Attrs),
		})
	}
	return json.MarshalIndent(out, "", " ")
}

// Summary returns one line per trace (for /traces listings): ID, key,
// span/event counts, error classes, pinned/active markers.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	for _, t := range s.Traces {
		events := 0
		for _, sp := range t.Spans {
			events += len(sp.Events)
		}
		fmt.Fprintf(&b, "%s %-40s spans=%d events=%d [%d-%dms]",
			t.ID, t.Key, len(t.Spans), events, t.StartMs, t.EndMs)
		if len(t.ErrClasses) > 0 {
			fmt.Fprintf(&b, " err=%s", strings.Join(t.ErrClasses, ","))
		}
		if t.Pinned {
			b.WriteString(" pinned")
		}
		if !t.Done {
			b.WriteString(" active")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrClassCounts tallies traces per error class (the /traces index view).
func (s *Snapshot) ErrClassCounts() map[string]int {
	out := map[string]int{}
	for _, t := range s.Traces {
		for _, c := range t.ErrClasses {
			out[c]++
		}
	}
	return out
}

// SortedErrClasses returns the tally keys in sorted order.
func SortedErrClasses(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
