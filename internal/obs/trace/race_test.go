package trace

import (
	"fmt"
	"sync"
	"testing"
)

// concurrentWorkload drives one recorder from many goroutines the way a
// DoP>1 dataflow run does: each worker owns a disjoint set of traces
// (serial per trace) but all emit through the shared recorder at once.
// Trace starts are serial (like the executor feeding sources in input
// order); span emission is concurrent with keyed slots.
func concurrentWorkload(seed uint64, workers, perWorker int) *Recorder {
	r := NewRecorder(Config{Seed: seed, HeadKeep: 4, TailKeep: 8, ReservoirKeep: 4, PinLimit: 64, MaxActive: 4096})
	total := workers * perWorker
	ctxs := make([]Context, total)
	for i := 0; i < total; i++ {
		ctxs[i] = r.Start("test.record", fmt.Sprintf("rec-%04d", i), int64(i))
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				i := w*perWorker + j
				tc := ctxs[i]
				// Keyed slots: deterministic span IDs regardless of
				// cross-goroutine interleaving.
				op1 := tc.StartSpanKeyed("test.op.first", 1, int64(i)+1, Int("idx", int64(i)))
				op1.Event("op.enter", int64(i)+1)
				op1.End(int64(i) + 2)
				op2 := tc.StartSpanKeyed("test.op.second", 2, int64(i)+3)
				if i%17 == 0 {
					op2.Error("quarantine", int64(i)+4, String("reason", "synthetic"))
				}
				op2.End(int64(i) + 4)
				tc.Finish(int64(i) + 5)
			}
		}(w)
	}
	wg.Wait()
	return r
}

// TestConcurrentEmissionDeterministic is the core two-run byte-identity
// claim: concurrent span emission from racing workers still exports the
// same bytes per seed, because IDs, retention, and export order are all
// pure functions of the trace set.
func TestConcurrentEmissionDeterministic(t *testing.T) {
	for _, seed := range []uint64{1, 42, 12345} {
		a := concurrentWorkload(seed, 8, 40).Snapshot()
		b := concurrentWorkload(seed, 8, 40).Snapshot()
		aj, err := a.JSON()
		if err != nil {
			t.Fatal(err)
		}
		bj, err := b.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(aj) != string(bj) {
			t.Fatalf("seed %d: two concurrent runs exported different JSON", seed)
		}
		if a.Text() != b.Text() {
			t.Fatalf("seed %d: two concurrent runs exported different text", seed)
		}
		ac, _ := a.Chrome()
		bc, _ := b.Chrome()
		if string(ac) != string(bc) {
			t.Fatalf("seed %d: two concurrent runs exported different chrome JSON", seed)
		}
	}
}

// TestConcurrentPinsSurvive checks every error-pinned trace survives
// concurrent eviction pressure.
func TestConcurrentPinsSurvive(t *testing.T) {
	r := concurrentWorkload(7, 8, 40)
	s := r.Snapshot()
	want := 0
	for i := 0; i < 8*40; i++ {
		if i%17 == 0 {
			want++
		}
	}
	if got := len(s.Pinned()); got != want {
		t.Fatalf("pinned traces: got %d, want %d", got, want)
	}
	for _, tr := range s.Pinned() {
		if len(tr.Spans) != 3 {
			t.Fatalf("pinned trace %s lost spans: %d", tr.ID, len(tr.Spans))
		}
	}
}

// TestConcurrentSnapshotWhileEmitting takes snapshots while workers are
// still emitting — the live /traces endpoint path — under -race.
func TestConcurrentSnapshotWhileEmitting(t *testing.T) {
	r := NewRecorder(Config{Seed: 3, MaxActive: 4096})
	stop := make(chan struct{})
	var emitters, reader sync.WaitGroup
	for w := 0; w < 4; w++ {
		emitters.Add(1)
		go func(w int) {
			defer emitters.Done()
			for i := 0; i < 200; i++ {
				tc := r.Start("test.record", fmt.Sprintf("w%d-%d", w, i), int64(i))
				sub := tc.StartSpanKeyed("test.op.first", 1, int64(i))
				sub.Event("op.enter", int64(i))
				sub.End(int64(i) + 1)
				tc.Finish(int64(i) + 2)
			}
		}(w)
	}
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := r.Snapshot()
			_ = s.Text()
			_, _ = s.JSON()
			_ = s.Summary()
		}
	}()
	emitters.Wait()
	close(stop)
	reader.Wait()
}
