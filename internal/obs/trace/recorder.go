package trace

import (
	"sort"
	"sync"
)

// Config bounds the Recorder. The retention model keeps four classes of
// completed traces, in descending priority:
//
//	pinned     flight-recorder traces (error-class events), up to PinLimit
//	head       the first HeadKeep traces ever started (crawl warm-up)
//	tail       the TailKeep most recently started completed traces
//	reservoir  a bottom-k hash sample of everything in between
//
// All four are pure functions of the trace set — evict-min for the tail
// and bottom-k-by-FNV-priority for the reservoir are order-independent —
// so the retained set at end of run does not depend on completion-order
// races between worker goroutines.
type Config struct {
	// Seed feeds the FNV ID stream and the reservoir priorities.
	Seed uint64
	// HeadKeep is the number of first-started traces always retained.
	HeadKeep int
	// TailKeep is the ring of most recently started completed traces.
	TailKeep int
	// ReservoirKeep is the bottom-k sample size over evicted mid traces.
	ReservoirKeep int
	// PinLimit caps flight-recorder pins; error traces beyond it fall back
	// to normal retention (counted in SnapshotStats.PinDropped).
	PinLimit int
	// MaxActive caps concurrently unfinished traces; Start beyond the cap
	// returns a disabled Context (counted in SnapshotStats.DroppedActive).
	MaxActive int
}

// DefaultConfig returns the calibrated recorder bounds for a seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		HeadKeep:      16,
		TailKeep:      64,
		ReservoirKeep: 32,
		PinLimit:      256,
		MaxActive:     1 << 16,
	}
}

// Mark is a recorder-level annotation outside any trace (checkpoint
// boundaries, phase transitions), stamped in virtual-clock time. Marks are
// live-debugging state, not replay state: a checkpoint snapshot destined
// for resume clears them (see crawler.Checkpoint), keeping a resumed run's
// export byte-identical to an uninterrupted one.
type Mark struct {
	Name  string `json:"name"`
	AtMs  int64  `json:"at_ms"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Recorder collects traces under a single mutex. All methods are safe for
// concurrent use; a nil *Recorder is a valid always-off recorder.
type Recorder struct {
	mu  sync.Mutex
	cfg Config

	startSeq uint64
	traces   map[TraceID]*Trace
	active   int
	pinCount int

	// tail and reservoir membership for completed, unpinned, non-head
	// traces (head membership is implicit in StartIndex < HeadKeep).
	tail      map[TraceID]bool
	reservoir map[TraceID]bool

	dropped       uint64 // completed traces evicted
	droppedActive uint64 // Start calls refused by MaxActive
	pinDropped    uint64 // error traces not pinned (PinLimit)

	marks []Mark
}

// NewRecorder returns a recorder with the given bounds. Non-positive
// bounds fall back to DefaultConfig values.
func NewRecorder(cfg Config) *Recorder {
	def := DefaultConfig(cfg.Seed)
	if cfg.HeadKeep <= 0 {
		cfg.HeadKeep = def.HeadKeep
	}
	if cfg.TailKeep <= 0 {
		cfg.TailKeep = def.TailKeep
	}
	if cfg.ReservoirKeep <= 0 {
		cfg.ReservoirKeep = def.ReservoirKeep
	}
	if cfg.PinLimit <= 0 {
		cfg.PinLimit = def.PinLimit
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = def.MaxActive
	}
	return &Recorder{
		cfg:       cfg,
		traces:    map[TraceID]*Trace{},
		tail:      map[TraceID]bool{},
		reservoir: map[TraceID]bool{},
	}
}

// Context is a value handle onto one span of one trace. The zero Context
// (and any Context from a nil recorder) is a no-op on every method, which
// is the entire tracing-off fast path.
type Context struct {
	r     *Recorder
	Trace TraceID
	Span  SpanID
}

// Active reports whether the context records anywhere.
func (c Context) Active() bool { return c.r != nil }

// Start begins a new trace whose root span has the given name, keyed by
// the document identity (URL, record key). IDs derive from
// (seed, key, start sequence), so same-seed runs mint identical IDs.
func (r *Recorder) Start(name, key string, atMs int64, attrs ...Attr) Context {
	if r == nil {
		return Context{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.active >= r.cfg.MaxActive {
		r.droppedActive++
		return Context{}
	}
	idx := r.startSeq
	r.startSeq++
	id := TraceID(nonZero(fnvMix(r.cfg.Seed, fnvString(key), idx)))
	root := &SpanData{
		ID:      SpanID(nonZero(fnvMix(uint64(id), 0, 0))),
		Name:    name,
		StartMs: atMs,
		EndMs:   atMs,
		Attrs:   attrs,
	}
	t := &Trace{ID: id, Key: key, StartIndex: idx, StartMs: atMs, EndMs: atMs}
	t.addSpan(root)
	r.traces[id] = t
	r.active++
	return Context{r: r, Trace: id, Span: root.ID}
}

// Context returns a handle onto the root span of a known unfinished
// trace — how the crawler re-enters a URL's trace from the ID stored in
// the CrawlDB. Unknown or finished traces yield a no-op Context.
func (r *Recorder) Context(id TraceID) Context {
	if r == nil {
		return Context{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.traces[id]
	if t == nil || t.Done || len(t.Spans) == 0 {
		return Context{}
	}
	return Context{r: r, Trace: id, Span: t.Spans[0].ID}
}

// Mark records a recorder-level annotation (checkpoint boundary).
func (r *Recorder) Mark(name string, atMs int64, attrs ...Attr) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.marks = append(r.marks, Mark{Name: name, AtMs: atMs, Attrs: attrs})
}

// lockedSpan resolves the context's span with the recorder lock held.
func (c Context) lockedSpan() (*Trace, *SpanData) {
	t := c.r.traces[c.Trace]
	if t == nil {
		return nil, nil
	}
	return t, t.span(c.Span)
}

// StartSpan opens a child span. The span ID derives from the per-trace
// span sequence, which is deterministic for serial emitters (the crawler);
// concurrent emitters must use StartSpanKeyed instead.
func (c Context) StartSpan(name string, atMs int64, attrs ...Attr) Context {
	if c.r == nil {
		return c
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	t, _ := c.lockedSpan()
	if t == nil || t.Done {
		return Context{}
	}
	return c.startSpanLocked(t, name, uint64(len(t.Spans)), atMs, attrs)
}

// StartSpanKeyed opens a child span whose ID derives from the caller's
// slot key instead of the racy span count — the concurrent-emitter form
// (the dataflow executor keys spans by (node id, emit index), which is
// deterministic per record path regardless of worker interleaving).
func (c Context) StartSpanKeyed(name string, slot uint64, atMs int64, attrs ...Attr) Context {
	if c.r == nil {
		return c
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	t, _ := c.lockedSpan()
	if t == nil || t.Done {
		return Context{}
	}
	return c.startSpanLocked(t, name, slot, atMs, attrs)
}

func (c Context) startSpanLocked(t *Trace, name string, slot uint64, atMs int64, attrs []Attr) Context {
	sp := &SpanData{
		ID:      SpanID(nonZero(fnvMix(uint64(c.Trace), uint64(c.Span), slot, fnvString(name)))),
		Parent:  c.Span,
		Name:    name,
		StartMs: atMs,
		EndMs:   atMs,
		Attrs:   attrs,
	}
	t.addSpan(sp)
	if atMs > t.EndMs {
		t.EndMs = atMs
	}
	return Context{r: c.r, Trace: c.Trace, Span: sp.ID}
}

// Event appends a point event to the context's span.
func (c Context) Event(name string, atMs int64, attrs ...Attr) {
	if c.r == nil {
		return
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	t, sp := c.lockedSpan()
	if t == nil || sp == nil || t.Done {
		return
	}
	sp.Events = append(sp.Events, Event{Name: name, AtMs: atMs, Attrs: attrs})
	if atMs > sp.EndMs {
		sp.EndMs = atMs
	}
	if atMs > t.EndMs {
		t.EndMs = atMs
	}
}

// End closes the context's span at atMs (monotone: earlier times are
// ignored).
func (c Context) End(atMs int64) {
	if c.r == nil {
		return
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	t, sp := c.lockedSpan()
	if t == nil || sp == nil || t.Done {
		return
	}
	if atMs > sp.EndMs {
		sp.EndMs = atMs
	}
	if atMs > t.EndMs {
		t.EndMs = atMs
	}
}

// Error records an error-class event on the span and — the flight
// recorder — pins the whole trace so its span tree survives ring-buffer
// eviction. Classes are short constants ("quarantine", "breaker_open").
func (c Context) Error(class string, atMs int64, attrs ...Attr) {
	if c.r == nil {
		return
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	t, sp := c.lockedSpan()
	if t == nil || sp == nil || t.Done {
		return
	}
	sp.Events = append(sp.Events, Event{Name: "error", AtMs: atMs,
		Attrs: append([]Attr{{Key: "class", Value: class}}, attrs...)})
	if atMs > t.EndMs {
		t.EndMs = atMs
	}
	t.addErrClass(class)
	c.r.pinLocked(t)
}

// pinLocked promotes a trace to the pinned retention class.
func (r *Recorder) pinLocked(t *Trace) {
	if t.Pinned {
		return
	}
	if r.pinCount >= r.cfg.PinLimit {
		r.pinDropped++
		return
	}
	t.Pinned = true
	r.pinCount++
	// Pinned traces leave the evictable sets.
	delete(r.tail, t.ID)
	delete(r.reservoir, t.ID)
}

// Finish completes the trace and applies retention. Finishing an already
// finished or unknown trace is a no-op.
func (c Context) Finish(atMs int64) {
	if c.r == nil {
		return
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	t := c.r.traces[c.Trace]
	if t == nil || t.Done {
		return
	}
	t.Done = true
	if atMs > t.EndMs {
		t.EndMs = atMs
	}
	// Close the finishing span (normally the root) with the trace.
	if sp := t.span(c.Span); sp != nil && t.EndMs > sp.EndMs {
		sp.EndMs = t.EndMs
	}
	c.r.active--
	c.r.retainLocked(t)
}

// retainLocked slots one newly completed trace into the retention classes
// and evicts the loser, if any. Pure in the trace set: the same completed
// traces yield the same retained set in any completion order.
func (r *Recorder) retainLocked(t *Trace) {
	if t.Pinned || t.StartIndex < uint64(r.cfg.HeadKeep) {
		return
	}
	r.tail[t.ID] = true
	if len(r.tail) <= r.cfg.TailKeep {
		return
	}
	// Evict the oldest tail member into the reservoir.
	oldest := TraceID(0)
	var oldestIdx uint64
	for id := range r.tail {
		if idx := r.traces[id].StartIndex; oldest == 0 || idx < oldestIdx {
			oldest, oldestIdx = id, idx
		}
	}
	delete(r.tail, oldest)
	r.reservoirOfferLocked(oldest)
}

// reservoirOfferLocked implements bottom-k sampling: the k candidates with
// the smallest FNV priority stay; priority is a pure function of
// (seed, trace ID), so the sample is completion-order independent.
func (r *Recorder) reservoirOfferLocked(id TraceID) {
	prio := func(id TraceID) uint64 { return fnvMix(r.cfg.Seed, ^uint64(id)) }
	if len(r.reservoir) < r.cfg.ReservoirKeep {
		r.reservoir[id] = true
		return
	}
	worst := TraceID(0)
	var worstPrio uint64
	for m := range r.reservoir {
		if p := prio(m); worst == 0 || p > worstPrio {
			worst, worstPrio = m, p
		}
	}
	if prio(id) < worstPrio {
		delete(r.reservoir, worst)
		delete(r.traces, worst)
		r.reservoir[id] = true
	} else {
		delete(r.traces, id)
	}
	r.dropped++
}

// SnapshotStats are the recorder's loss counters.
type SnapshotStats struct {
	Dropped       uint64 `json:"dropped,omitempty"`
	DroppedActive uint64 `json:"dropped_active,omitempty"`
	PinDropped    uint64 `json:"pin_dropped,omitempty"`
}

// Snapshot is a deep, consistent copy of the recorder: every retained
// trace (active and completed) in StartIndex order with spans sorted into
// the canonical deterministic order, plus the sequence counters needed to
// continue the ID stream after a resume. It is plain JSON-encodable data.
type Snapshot struct {
	StartSeq uint64        `json:"start_seq"`
	Stats    SnapshotStats `json:"stats,omitempty"`
	Marks    []Mark        `json:"marks,omitempty"`
	Traces   []*Trace      `json:"traces"`
}

// Snapshot freezes the recorder. The copy shares nothing with the live
// recorder.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		StartSeq: r.startSeq,
		Stats: SnapshotStats{
			Dropped:       r.dropped,
			DroppedActive: r.droppedActive,
			PinDropped:    r.pinDropped,
		},
		Marks:  append([]Mark(nil), r.marks...),
		Traces: make([]*Trace, 0, len(r.traces)),
	}
	for _, t := range r.traces {
		s.Traces = append(s.Traces, copyTrace(t))
	}
	sort.Slice(s.Traces, func(i, j int) bool {
		return s.Traces[i].StartIndex < s.Traces[j].StartIndex
	})
	return s
}

// copyTrace deep-copies a trace with spans in canonical order: sorted by
// (StartMs, Parent, ID). Span insertion order can race under concurrent
// emitters; the sort key is made of derived values only, so the canonical
// order is deterministic per seed.
func copyTrace(t *Trace) *Trace {
	out := &Trace{
		ID:         t.ID,
		Key:        t.Key,
		StartIndex: t.StartIndex,
		StartMs:    t.StartMs,
		EndMs:      t.EndMs,
		Done:       t.Done,
		Pinned:     t.Pinned,
		ErrClasses: append([]string(nil), t.ErrClasses...),
		Spans:      make([]*SpanData, len(t.Spans)),
	}
	for i, sp := range t.Spans {
		cp := &SpanData{
			ID:      sp.ID,
			Parent:  sp.Parent,
			Name:    sp.Name,
			StartMs: sp.StartMs,
			EndMs:   sp.EndMs,
			Attrs:   append([]Attr(nil), sp.Attrs...),
			Events:  append([]Event(nil), sp.Events...),
		}
		out.Spans[i] = cp
	}
	sort.Slice(out.Spans, func(i, j int) bool {
		a, b := out.Spans[i], out.Spans[j]
		if a.StartMs != b.StartMs {
			return a.StartMs < b.StartMs
		}
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		return a.ID < b.ID
	})
	return out
}

// Load restores a snapshot into a fresh recorder (the resume half of
// checkpoint/resume). Tail and reservoir membership are recomputed from
// the retained set — both are pure functions of it — so retention after
// the resume proceeds exactly as it would have in the uninterrupted run.
// Load panics if the recorder already holds traces: resuming into a used
// recorder would interleave two ID streams.
func (r *Recorder) Load(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.traces) > 0 || r.startSeq > 0 {
		panic("trace: Load into a non-empty recorder")
	}
	r.startSeq = s.StartSeq
	r.dropped = s.Stats.Dropped
	r.droppedActive = s.Stats.DroppedActive
	r.pinDropped = s.Stats.PinDropped
	r.marks = append([]Mark(nil), s.Marks...)
	var completed []*Trace
	for _, t := range s.Traces {
		cp := copyTrace(t)
		r.traces[cp.ID] = cp
		if cp.Pinned {
			r.pinCount++
		}
		if !cp.Done {
			r.active++
		} else if !cp.Pinned && cp.StartIndex >= uint64(r.cfg.HeadKeep) {
			completed = append(completed, cp)
		}
	}
	// Largest TailKeep start indices form the tail; the rest were
	// reservoir survivors.
	sort.Slice(completed, func(i, j int) bool {
		return completed[i].StartIndex > completed[j].StartIndex
	})
	for i, t := range completed {
		if i < r.cfg.TailKeep {
			r.tail[t.ID] = true
		} else {
			r.reservoir[t.ID] = true
		}
	}
}

// Len returns the number of retained traces (active plus completed).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.traces)
}
