package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestIDsDeterministicPerSeed(t *testing.T) {
	mint := func(seed uint64) []TraceID {
		r := NewRecorder(Config{Seed: seed})
		var ids []TraceID
		for i := 0; i < 10; i++ {
			tc := r.Start("test.root", fmt.Sprintf("key-%d", i), int64(i))
			ids = append(ids, tc.Trace)
			tc.Finish(int64(i))
		}
		return ids
	}
	a, b := mint(42), mint(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed run minted different IDs at %d: %s vs %s", i, a[i], b[i])
		}
		if a[i] == 0 {
			t.Fatalf("minted zero trace ID at %d", i)
		}
	}
	c := mint(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds minted identical ID streams")
	}
}

func TestSpanTreeAndEvents(t *testing.T) {
	r := NewRecorder(Config{Seed: 1})
	tc := r.Start("crawler.url", "http://h0/p0", 0, String("host", "h0"))
	child := tc.StartSpan("crawler.fetch.attempt", 100, Int("attempt", 0))
	child.Event("fetch.error", 350, String("kind", "host_down"))
	child.End(350)
	child2 := tc.StartSpan("crawler.fetch.attempt", 900, Int("attempt", 1))
	child2.Event("fetch.ok", 1100)
	child2.End(1100)
	tc.Finish(1100)

	s := r.Snapshot()
	if len(s.Traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(s.Traces))
	}
	tr := s.Traces[0]
	if len(tr.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(tr.Spans))
	}
	root := tr.Spans[0]
	if root.Parent != 0 || root.Name != "crawler.url" {
		t.Fatalf("first span should be root, got %+v", root)
	}
	for _, sp := range tr.Spans[1:] {
		if sp.Parent != root.ID {
			t.Fatalf("child span %s has parent %s, want root %s", sp.Name, sp.Parent, root.ID)
		}
	}
	if tr.EndMs != 1100 {
		t.Fatalf("trace EndMs = %d, want 1100", tr.EndMs)
	}
	if tr.Spans[1].Events[0].Name != "fetch.error" {
		t.Fatalf("unexpected event order: %+v", tr.Spans[1].Events)
	}
}

func TestFinishedTraceIsImmutable(t *testing.T) {
	r := NewRecorder(Config{Seed: 1})
	tc := r.Start("test.root", "k", 0)
	tc.Finish(50)
	before := r.Snapshot()
	tc.Event("late.event", 100)
	tc.Error("late_error", 100)
	tc.End(200)
	if sub := tc.StartSpan("late.span", 100); sub.Active() {
		t.Fatal("StartSpan on a finished trace returned an active context")
	}
	after := r.Snapshot()
	bj, _ := before.JSON()
	aj, _ := after.JSON()
	if !bytes.Equal(bj, aj) {
		t.Fatalf("finished trace mutated:\nbefore:\n%s\nafter:\n%s", bj, aj)
	}
}

func TestNoopContexts(t *testing.T) {
	var r *Recorder // nil recorder is always-off
	tc := r.Start("x", "k", 0)
	if tc.Active() {
		t.Fatal("nil recorder returned active context")
	}
	// All methods must be safe on the zero Context.
	tc.Event("e", 0)
	tc.End(0)
	tc.Error("c", 0)
	tc.Finish(0)
	r.Mark("m", 0)
	if r.Len() != 0 {
		t.Fatal("nil recorder Len != 0")
	}
	if s := r.Snapshot(); len(s.Traces) != 0 {
		t.Fatal("nil recorder snapshot has traces")
	}
	zero := Context{}
	zero.Event("e", 0)
	zero.Finish(0)
	if zero.StartSpan("s", 0).Active() {
		t.Fatal("zero context StartSpan returned active context")
	}
}

func TestFlightRecorderPinsSurviveEviction(t *testing.T) {
	cfg := Config{Seed: 7, HeadKeep: 2, TailKeep: 4, ReservoirKeep: 2, PinLimit: 8, MaxActive: 1024}
	r := NewRecorder(cfg)
	var pinned []TraceID
	for i := 0; i < 200; i++ {
		tc := r.Start("test.root", fmt.Sprintf("k%03d", i), int64(i))
		if i == 50 || i == 120 {
			tc.Error("quarantine", int64(i), String("detail", "boom"))
			pinned = append(pinned, tc.Trace)
		}
		tc.Finish(int64(i))
	}
	s := r.Snapshot()
	for _, id := range pinned {
		tr := s.Find(id)
		if tr == nil {
			t.Fatalf("pinned trace %s evicted", id)
		}
		if !tr.Pinned || !tr.HasErrClass("quarantine") {
			t.Fatalf("pinned trace lost metadata: %+v", tr)
		}
	}
	// Head traces always retained.
	heads := 0
	for _, tr := range s.Traces {
		if tr.StartIndex < uint64(cfg.HeadKeep) {
			heads++
		}
	}
	if heads != cfg.HeadKeep {
		t.Fatalf("want %d head traces retained, got %d", cfg.HeadKeep, heads)
	}
	// Bounded: head + tail + reservoir + pinned.
	max := cfg.HeadKeep + cfg.TailKeep + cfg.ReservoirKeep + len(pinned)
	if len(s.Traces) > max {
		t.Fatalf("retained %d traces, bound is %d", len(s.Traces), max)
	}
	if s.Stats.Dropped == 0 {
		t.Fatal("expected eviction drops with 200 traces and tiny bounds")
	}
	if got := len(s.Pinned()); got != len(pinned) {
		t.Fatalf("Pinned() = %d, want %d", got, len(pinned))
	}
}

func TestPinLimitFallsBackToNormalRetention(t *testing.T) {
	r := NewRecorder(Config{Seed: 1, HeadKeep: 1, TailKeep: 2, ReservoirKeep: 1, PinLimit: 2, MaxActive: 16})
	for i := 0; i < 5; i++ {
		tc := r.Start("test.root", fmt.Sprintf("k%d", i), int64(i))
		tc.Error("panic", int64(i))
		tc.Finish(int64(i))
	}
	s := r.Snapshot()
	if got := len(s.Pinned()); got != 2 {
		t.Fatalf("PinLimit=2 but %d pinned", got)
	}
	if s.Stats.PinDropped != 3 {
		t.Fatalf("PinDropped = %d, want 3", s.Stats.PinDropped)
	}
}

func TestMaxActiveRefusesStart(t *testing.T) {
	r := NewRecorder(Config{Seed: 1, MaxActive: 2})
	a := r.Start("test.root", "a", 0)
	b := r.Start("test.root", "b", 0)
	c := r.Start("test.root", "c", 0)
	if !a.Active() || !b.Active() {
		t.Fatal("first two starts should be active")
	}
	if c.Active() {
		t.Fatal("third start should be refused by MaxActive=2")
	}
	a.Finish(1)
	d := r.Start("test.root", "d", 1)
	if !d.Active() {
		t.Fatal("start after a finish should succeed")
	}
	if s := r.Snapshot(); s.Stats.DroppedActive != 1 {
		t.Fatalf("DroppedActive = %d, want 1", s.Stats.DroppedActive)
	}
}

func TestSnapshotLoadRoundTrip(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder(Config{Seed: 11, HeadKeep: 2, TailKeep: 3, ReservoirKeep: 2, PinLimit: 4, MaxActive: 64})
		for i := 0; i < 30; i++ {
			tc := r.Start("test.root", fmt.Sprintf("k%02d", i), int64(i*10))
			sub := tc.StartSpan("test.child", int64(i*10+1), Int("i", int64(i)))
			sub.End(int64(i*10 + 5))
			if i%7 == 0 {
				tc.Error("breaker_open", int64(i*10+6))
			}
			if i < 25 { // leave a few active across the "checkpoint"
				tc.Finish(int64(i*10 + 9))
			}
		}
		r.Mark("checkpoint", 300, Int("cycle", 3))
		return r
	}

	orig := build()
	snap := orig.Snapshot()

	// JSON round-trip the snapshot (what a checkpoint file does).
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}

	resumed := NewRecorder(Config{Seed: 11, HeadKeep: 2, TailKeep: 3, ReservoirKeep: 2, PinLimit: 4, MaxActive: 64})
	resumed.Load(&back)

	// The resumed recorder must export identically...
	a, b := snap.Text(), resumed.Snapshot().Text()
	if a != b {
		t.Fatalf("resume changed export:\norig:\n%s\nresumed:\n%s", a, b)
	}

	// ...and continue identically: drive both with the same tail workload.
	drive := func(r *Recorder) string {
		// Re-enter the still-active traces by ID and finish them.
		s := r.Snapshot()
		for _, tr := range s.Traces {
			if tr.Done {
				continue
			}
			tc := r.Context(tr.ID)
			tc.Event("resumed.finish", 500)
			tc.Finish(500)
		}
		for i := 30; i < 45; i++ {
			tc := r.Start("test.root", fmt.Sprintf("k%02d", i), int64(i*10))
			tc.Finish(int64(i*10 + 9))
		}
		return r.Snapshot().Text()
	}
	cont := build() // uninterrupted twin
	if got, want := drive(resumed), drive(cont); got != want {
		t.Fatalf("post-resume divergence:\nresumed:\n%s\nuninterrupted:\n%s", got, want)
	}
}

func TestLoadPanicsOnNonEmptyRecorder(t *testing.T) {
	r := NewRecorder(Config{Seed: 1})
	r.Start("test.root", "k", 0).Finish(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Load into used recorder did not panic")
		}
	}()
	r.Load(&Snapshot{})
}

func TestTextExportGolden(t *testing.T) {
	r := NewRecorder(Config{Seed: 99})
	tc := r.Start("crawler.url", "http://h1/p1", 0, String("host", "h1"))
	tc.Event("frontier.inject", 0, Int("depth", 0))
	at := tc.StartSpan("crawler.fetch.attempt", 200, Int("attempt", 0))
	at.Error("breaker_open", 450, String("host", "h1"))
	at.End(450)
	tc.Finish(500)
	r.Mark("checkpoint", 600, Int("cycle", 1))

	got := r.Snapshot().Text()
	want := "" +
		"trace " + tc.Trace.String() + " key=http://h1/p1 [0-500ms] spans=2 err=[breaker_open] pinned\n" +
		"  span crawler.url [0-500ms] host=h1\n" +
		"    @0ms frontier.inject depth=0\n" +
		"    span crawler.fetch.attempt [200-450ms] attempt=0\n" +
		"      @450ms error class=breaker_open host=h1\n" +
		"mark checkpoint @600ms cycle=1\n"
	if got != want {
		t.Fatalf("text export mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestChromeExportWellFormed(t *testing.T) {
	r := NewRecorder(Config{Seed: 3})
	tc := r.Start("crawler.url", "http://h2/p0", 100)
	sub := tc.StartSpan("crawler.fetch.attempt", 150)
	sub.Event("fetch.ok", 180)
	sub.End(200)
	tc.Finish(220)
	r.Mark("checkpoint", 250)

	blob, err := r.Snapshot().Chrome()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	var phases []string
	for _, ev := range doc.TraceEvents {
		phases = append(phases, ev["ph"].(string))
	}
	joined := strings.Join(phases, "")
	if !strings.Contains(joined, "M") || !strings.Contains(joined, "X") || !strings.Contains(joined, "i") {
		t.Fatalf("chrome export missing phases, got %v", phases)
	}
	// Span ts must be virtual ms * 1000.
	for _, ev := range doc.TraceEvents {
		if ev["name"] == "crawler.fetch.attempt" {
			if ts := ev["ts"].(float64); ts != 150*1000 {
				t.Fatalf("span ts = %v, want 150000", ts)
			}
			if dur := ev["dur"].(float64); dur != 50*1000 {
				t.Fatalf("span dur = %v, want 50000", dur)
			}
		}
	}
}

func TestFilter(t *testing.T) {
	r := NewRecorder(Config{Seed: 5})
	a := r.Start("crawler.url", "http://alpha/x", 0)
	a.StartSpan("crawler.fetch.attempt", 10).End(20)
	a.Finish(30)
	b := r.Start("dataflow.record", "rec-007", 5)
	b.Error("quarantine", 15)
	b.Finish(25)

	s := r.Snapshot()
	if got := len(s.Filter(Filter{Key: "alpha"}).Traces); got != 1 {
		t.Fatalf("key filter: got %d, want 1", got)
	}
	if got := len(s.Filter(Filter{Op: "fetch.attempt"}).Traces); got != 1 {
		t.Fatalf("op filter: got %d, want 1", got)
	}
	if got := len(s.Filter(Filter{ErrClass: "quarantine"}).Traces); got != 1 {
		t.Fatalf("err filter: got %d, want 1", got)
	}
	if got := len(s.Filter(Filter{PinnedOnly: true}).Traces); got != 1 {
		t.Fatalf("pinned filter: got %d, want 1", got)
	}
	if got := len(s.Filter(Filter{Limit: 1}).Traces); got != 1 {
		t.Fatalf("limit: got %d, want 1", got)
	}
	if got := len(s.Filter(Filter{}).Traces); got != 2 {
		t.Fatalf("zero filter: got %d, want 2", got)
	}
	counts := s.ErrClassCounts()
	if counts["quarantine"] != 1 {
		t.Fatalf("ErrClassCounts = %v", counts)
	}
	if keys := SortedErrClasses(counts); len(keys) != 1 || keys[0] != "quarantine" {
		t.Fatalf("SortedErrClasses = %v", keys)
	}
}

func TestParseID(t *testing.T) {
	id := TraceID(0xdeadbeef12345678)
	got, err := ParseID(id.String())
	if err != nil || got != id {
		t.Fatalf("ParseID(%q) = %v, %v", id.String(), got, err)
	}
	if _, err := ParseID("zzz"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
}

func TestTraceName(t *testing.T) {
	if got := TraceName("dataflow.op", "tokenize"); got != "dataflow.op.tokenize" {
		t.Fatalf("TraceName = %q", got)
	}
	if got := TraceName("solo"); got != "solo" {
		t.Fatalf("TraceName single = %q", got)
	}
}
