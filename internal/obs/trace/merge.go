package trace

// Merge folds per-shard snapshots into one export-ready snapshot. Shards
// trace disjoint key populations (a URL's host hashes to exactly one
// shard), so the union is a simple concatenation; what needs care is the
// StartIndex sequence, which is per-recorder. Merge renumbers shard i's
// indices by the cumulative StartSeq of shards 0..i-1, keeping indices
// unique and order-preserving within each shard, and sums the sequence
// and loss counters — the merged snapshot Loads into a fresh recorder and
// exports deterministically. Marks concatenate in shard order.
//
// The merge is deterministic in the argument order: callers pass shards
// in index order so one fleet always renders one byte sequence.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{Traces: []*Trace{}}
	var base uint64
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, t := range s.Traces {
			cp := copyTrace(t)
			cp.StartIndex += base
			out.Traces = append(out.Traces, cp)
		}
		for _, m := range s.Marks {
			out.Marks = append(out.Marks, Mark{
				Name:  m.Name,
				AtMs:  m.AtMs,
				Attrs: append([]Attr(nil), m.Attrs...),
			})
		}
		base += s.StartSeq
		out.Stats.Dropped += s.Stats.Dropped
		out.Stats.DroppedActive += s.Stats.DroppedActive
		out.Stats.PinDropped += s.Stats.PinDropped
	}
	out.StartSeq = base
	return out
}
