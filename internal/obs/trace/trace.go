// Package trace is the per-document forensics layer on top of the obs
// registry: where obs aggregates (how many fetches failed), trace follows
// individual documents (which page took which path through the crawler and
// the data flow). The paper's pitfalls are all per-document stories —
// pages that crash taggers (§4.2), boilerplate that survives filtering
// (§5), degenerate documents that stall workers — and PR 3's retries,
// breakers, and quarantine made the per-document paths branchy enough that
// aggregates alone cannot reconstruct what happened to one page.
//
// Everything here is deterministic per seed and free of wall-clock reads:
//
//   - trace and span IDs are derived from a seeded FNV-1a stream over
//     (seed, key, start sequence) — never math/rand or time.Now;
//   - timestamps are virtual-clock milliseconds supplied by the caller
//     (the crawler's discrete-event clock, the dataflow's plan-position
//     logical clock);
//   - the Recorder's retention (head/tail ring + bottom-k hash reservoir)
//     is a pure function of the trace set, so two same-seed runs export
//     byte-identical traces even when spans are emitted concurrently.
//
// A Context is a cheap value handle (recorder pointer + two IDs). The nil
// recorder and the zero Context are valid no-ops, so tracing-off call
// sites cost one pointer comparison.
package trace

import (
	"strconv"
)

// TraceID identifies one document's trace.
type TraceID uint64

// String renders the ID as fixed-width hex (the /traces?id= form).
func (t TraceID) String() string { return fixedHex(uint64(t)) }

// SpanID identifies one span within a trace. Zero means "none" (the
// parent of a root span).
type SpanID uint64

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return fixedHex(uint64(s)) }

func fixedHex(v uint64) string {
	const digits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = digits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ParseID parses the fixed-width hex form of a trace ID.
func ParseID(s string) (TraceID, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	return TraceID(v), err
}

// Attr is one key/value annotation on a span or event. Keys are
// compile-time constants in lower_snake form (the lintx tracename check
// enforces this); values may be dynamic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// String builds a string-valued attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer-valued attribute.
func Int(key string, value int64) Attr {
	return Attr{Key: key, Value: strconv.FormatInt(value, 10)}
}

// Float builds a float attribute rendered with strconv 'g' precision -1,
// the same deterministic formatting obs snapshots use.
func Float(key string, value float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(value, 'g', -1, 64)}
}

// Event is one point-in-time occurrence on a span, stamped in
// virtual-clock milliseconds.
type Event struct {
	Name  string `json:"name"`
	AtMs  int64  `json:"at_ms"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// SpanData is one node of a trace's span tree. Spans are flat in storage
// (Parent links encode the tree); exporters reconstruct the hierarchy.
type SpanData struct {
	ID      SpanID `json:"id"`
	Parent  SpanID `json:"parent,omitempty"`
	Name    string `json:"name"`
	StartMs int64  `json:"start_ms"`
	EndMs   int64  `json:"end_ms"`
	Attrs   []Attr `json:"attrs,omitempty"`
	Events  []Event `json:"events,omitempty"`
}

// Trace is one document's complete span tree plus retention metadata.
type Trace struct {
	ID TraceID `json:"id"`
	// Key is the document identity the trace was started with (the URL in
	// the crawler, the record key in the dataflow).
	Key string `json:"key"`
	// StartIndex is the trace's position in the recorder's start sequence;
	// it drives head/tail retention and the deterministic export order.
	StartIndex uint64 `json:"start_index"`
	StartMs    int64  `json:"start_ms"`
	EndMs      int64  `json:"end_ms"`
	// Done marks a finished trace (only finished traces are evictable).
	Done bool `json:"done,omitempty"`
	// Pinned marks a flight-recorder trace: an error-class event occurred
	// and the full span tree survives ring-buffer eviction.
	Pinned bool `json:"pinned,omitempty"`
	// ErrClasses lists the distinct error classes seen, sorted.
	ErrClasses []string    `json:"err_classes,omitempty"`
	Spans      []*SpanData `json:"spans"`

	spanIdx map[SpanID]*SpanData
}

func (t *Trace) span(id SpanID) *SpanData {
	if t.spanIdx == nil {
		t.spanIdx = make(map[SpanID]*SpanData, len(t.Spans))
		for _, s := range t.Spans {
			t.spanIdx[s.ID] = s
		}
	}
	return t.spanIdx[id]
}

func (t *Trace) addSpan(s *SpanData) {
	t.span(0) // materialize the index
	t.Spans = append(t.Spans, s)
	t.spanIdx[s.ID] = s
}

// addErrClass inserts a class into the sorted distinct list.
func (t *Trace) addErrClass(class string) {
	for i, c := range t.ErrClasses {
		if c == class {
			return
		}
		if c > class {
			t.ErrClasses = append(t.ErrClasses, "")
			copy(t.ErrClasses[i+1:], t.ErrClasses[i:])
			t.ErrClasses[i] = class
			return
		}
	}
	t.ErrClasses = append(t.ErrClasses, class)
}

// HasErrClass reports whether the trace recorded the given error class.
func (t *Trace) HasErrClass(class string) bool {
	for _, c := range t.ErrClasses {
		if c == class {
			return true
		}
	}
	return false
}

// FNV-1a constants (the repo's standard deterministic hash).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds a stream of uint64 words into an FNV-1a hash — the seeded
// ID stream of this package. Byte order is fixed (little-endian), so the
// derived IDs are platform-stable.
func fnvMix(parts ...uint64) uint64 {
	h := uint64(fnvOffset)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// fnvString hashes a string with FNV-1a.
func fnvString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// nonZero keeps derived IDs out of the zero value (reserved for "none").
func nonZero(v uint64) uint64 {
	if v == 0 {
		return 1
	}
	return v
}

// TraceName composes a dotted trace name from parts — the one sanctioned
// builder for computed span/event names (mirrors dataflow.MetricName for
// metric keys; the lintx tracename check allows it and nothing else).
// Parts are joined with dots; the caller owns keeping parts lower-case.
func TraceName(parts ...string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}
