package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// HistSnapshot is the frozen state of one histogram. Counts has one entry
// per bound plus a final overflow (+Inf) entry. A snapshot produced by
// merging histograms with different bucket layouts degrades to count/sum
// only (nil Bounds/Counts).
type HistSnapshot struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"counts,omitempty"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot is a point-in-time copy of a registry. Individual values are
// read atomically; the snapshot as a whole is not a cross-metric atomic
// cut (writers racing the snapshot may land on either side, metric by
// metric).
type Snapshot struct {
	Counters map[string]int64        `json:"counters,omitempty"`
	Gauges   map[string]int64        `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot freezes the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters: make(map[string]int64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Hists[name] = hs
	}
	return s
}

// Counter returns a counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns a gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Hist returns a histogram snapshot by name.
func (s Snapshot) Hist(name string) (HistSnapshot, bool) {
	h, ok := s.Hists[name]
	return h, ok
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Diff returns s minus prev: counter and histogram deltas for the interval
// between the two snapshots, gauges at their current (s) value. Metrics
// absent from s are dropped; metrics absent from prev are treated as zero.
func (s Snapshot) Diff(prev Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v - prev.Counters[name]
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, h := range s.Hists {
		p, ok := prev.Hists[name]
		if !ok {
			out.Hists[name] = h
			continue
		}
		d := HistSnapshot{Count: h.Count - p.Count, Sum: h.Sum - p.Sum}
		if sameBounds(h.Bounds, p.Bounds) && len(h.Counts) == len(p.Counts) {
			d.Bounds = append([]float64(nil), h.Bounds...)
			d.Counts = make([]int64, len(h.Counts))
			for i := range h.Counts {
				d.Counts[i] = h.Counts[i] - p.Counts[i]
			}
		}
		out.Hists[name] = d
	}
	return out
}

// Merge returns the union of two snapshots with values summed — for
// folding per-shard or per-component registries into one report. Gauges
// sum as well (shards hold disjoint populations). Histograms with
// mismatched bucket layouts merge to count/sum only.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters: make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)+len(o.Gauges)),
		Hists:    make(map[string]HistSnapshot, len(s.Hists)+len(o.Hists)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range o.Counters {
		out.Counters[name] += v
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range o.Gauges {
		out.Gauges[name] += v
	}
	for name, h := range s.Hists {
		out.Hists[name] = h
	}
	for name, h := range o.Hists {
		prev, ok := out.Hists[name]
		if !ok {
			out.Hists[name] = h
			continue
		}
		m := HistSnapshot{Count: prev.Count + h.Count, Sum: prev.Sum + h.Sum}
		if sameBounds(prev.Bounds, h.Bounds) && len(prev.Counts) == len(h.Counts) {
			m.Bounds = append([]float64(nil), prev.Bounds...)
			m.Counts = make([]int64, len(prev.Counts))
			for i := range prev.Counts {
				m.Counts[i] = prev.Counts[i] + h.Counts[i]
			}
		}
		out.Hists[name] = m
	}
	return out
}

// Load seeds the registry from a snapshot: counters and histograms are
// added on top of any existing state, gauges are overwritten. This is the
// restore half of checkpoint/resume — a component that snapshots its
// registry mid-run, restarts, and Loads the snapshot into a fresh registry
// continues its metric streams exactly where they stopped (histogram
// bucket counts and sums included, provided the bucket layouts match; a
// degraded count/sum-only snapshot restores count and sum alone).
func (r *Registry) Load(s Snapshot) {
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Hists {
		h := r.Histogram(name, hs.Bounds...)
		h.load(hs)
	}
}

// load folds a frozen histogram state into h. Bucket-level restore needs
// matching layouts; otherwise only count and sum carry over.
func (h *Histogram) load(hs HistSnapshot) {
	if sameBounds(h.bounds, hs.Bounds) && len(h.counts) == len(hs.Counts) {
		for i, c := range hs.Counts {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(hs.Count)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+hs.Sum)) {
			return
		}
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Text renders the snapshot deterministically, one metric per line,
// counters then gauges then histograms, each sorted by name:
//
//	counter crawler.fetch.ok 118
//	gauge   crawler.frontier.pending 0
//	hist    crawler.page.cost.ms count=120 sum=324000 le2500:2 le5000:118
//
// Histogram lines list only non-empty buckets (leINF for the overflow).
func (s Snapshot) Text() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "gauge   %s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		fmt.Fprintf(&b, "hist    %s count=%d sum=%s", n, h.Count, fmtFloat(h.Sum))
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			if i < len(h.Bounds) {
				fmt.Fprintf(&b, " le%s:%d", fmtFloat(h.Bounds[i]), c)
			} else {
				fmt.Fprintf(&b, " leINF:%d", c)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// JSON renders the snapshot as deterministic indented JSON (object keys
// sort lexically under encoding/json).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}
