// Package cliobs is the shared observability surface of the webtextie
// binaries: one Register call gives a command the same -trace, -log,
// -doctor, -series, and -debug-addr flags as every other command, so flag parity
// across crawl, analyze, and experiments holds by construction instead
// of by convention (and is checked by a table test over Names).
//
// The package renders summaries and reports as strings for the caller
// to print — commands own stdout; cliobs never writes to it.
package cliobs

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"webtextie/internal/obs"
	"webtextie/internal/obs/debugserv"
	"webtextie/internal/obs/doctor"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
)

// Flags holds the registered observability flags of one command.
type Flags struct {
	TraceOn     *bool
	TraceOut    *string
	TraceChrome *string
	LogOn       *bool
	LogOut      *string
	DoctorOn    *bool
	SeriesOn    *bool
	SeriesOut   *string
	SeriesJSON  *string
	ProfOn      *bool
	ProfOut     *string
	ProfFolded  *string
	ProfTopK    *int
	DebugAddr   *string
}

// Names lists the shared observability flag names every binary exposes —
// the parity contract the cmd table test checks against each command's
// FlagSet.
func Names() []string {
	return []string{"trace", "trace-out", "trace-chrome", "log", "log-out", "doctor",
		"series", "series-out", "series-json",
		"prof", "prof-out", "prof-folded", "prof-topk", "debug-addr"}
}

// Register installs the shared observability flags on a FlagSet.
func Register(fs *flag.FlagSet) *Flags {
	return &Flags{
		TraceOn:     fs.Bool("trace", false, "attach the deterministic lineage trace recorder"),
		TraceOut:    fs.String("trace-out", "", "write the end-of-run trace export (text) to FILE (implies -trace)"),
		TraceChrome: fs.String("trace-chrome", "", "write the end-of-run trace export (Chrome trace_event JSON, for Perfetto) to FILE (implies -trace)"),
		LogOn:       fs.Bool("log", false, "attach the deterministic structured event log"),
		LogOut:      fs.String("log-out", "", "write the end-of-run event-log export (logfmt) to FILE (implies -log)"),
		DoctorOn:    fs.Bool("doctor", false, "print the cross-pillar crawl-doctor diagnosis at exit (implies -log)"),
		SeriesOn:    fs.Bool("series", false, "attach the virtual-time metric series recorder"),
		SeriesOut:   fs.String("series-out", "", "write the end-of-run series export (CSV) to FILE (implies -series)"),
		SeriesJSON:  fs.String("series-json", "", "write the end-of-run series export (JSON) to FILE (implies -series)"),
		ProfOn:      fs.Bool("prof", false, "attach the deterministic cost-attribution profiler"),
		ProfOut:     fs.String("prof-out", "", "write the end-of-run cost profile (JSON) to FILE (implies -prof)"),
		ProfFolded:  fs.String("prof-folded", "", "write the end-of-run cost profile (folded flame stacks) to FILE (implies -prof)"),
		ProfTopK:    fs.Int("prof-topk", 10, "rows in the end-of-run profile top-k table (0 = all scopes)"),
		DebugAddr:   fs.String("debug-addr", "", "serve the live debug endpoints (/metrics /traces /logs /doctor /timeseries /profile /progress /debug/pprof) on HOST:PORT (implies -trace, -log, -series, and -prof)"),
	}
}

// Setup holds the observability surfaces a command built from its flags.
// Either pillar pointer is nil when its flags were off.
type Setup struct {
	Traces *trace.Recorder
	Logs   *evlog.Sink
	Series *series.Recorder
	Prof   *prof.Profiler
	f      *Flags
}

// Setup builds the trace recorder, event-log sink, and series recorder
// the flags ask for, all seeded/configured for determinism. The sink's
// derived evlog.records counters land in the process metric registry.
func (f *Flags) Setup(seed uint64) *Setup {
	s := &Setup{f: f}
	if *f.TraceOn || *f.TraceOut != "" || *f.TraceChrome != "" || *f.DebugAddr != "" {
		s.Traces = trace.NewRecorder(trace.DefaultConfig(seed))
	}
	if *f.LogOn || *f.LogOut != "" || *f.DoctorOn || *f.DebugAddr != "" {
		s.Logs = evlog.NewSink(evlog.DefaultConfig(seed)).WithMetrics(obs.Default())
	}
	if *f.SeriesOn || *f.SeriesOut != "" || *f.SeriesJSON != "" || *f.DebugAddr != "" {
		s.Series = series.New(series.DefaultConfig())
	}
	if *f.ProfOn || *f.ProfOut != "" || *f.ProfFolded != "" || *f.DebugAddr != "" {
		s.Prof = prof.New(prof.Config{})
	}
	return s
}

// ProfConfig returns the profiler configuration and whether profiling
// is on at all — the form fleet commands need (each shard owns a
// private profiler built from the config; see shard.Runner.WithProf).
func (s *Setup) ProfConfig() (prof.Config, bool) {
	if s.Prof == nil {
		return prof.Config{}, false
	}
	return s.Prof.Config(), true
}

// Serve starts the live debug server when -debug-addr is set, wired to
// the process metric registry and this setup's pillars. Returns the
// bound address ("" when the flag is off) for the command to print.
func (s *Setup) Serve(progress func() any) (string, error) {
	if *s.f.DebugAddr == "" {
		return "", nil
	}
	srv, err := debugserv.Start(*s.f.DebugAddr, debugserv.Options{
		Registry: obs.Default(),
		Traces:   s.Traces,
		Logs:     s.Logs,
		Series:   s.Series,
		Prof:     s.Prof,
		Progress: progress,
	})
	if err != nil {
		return "", err
	}
	return srv.Addr(), nil
}

// Finish writes the -trace-out / -trace-chrome / -log-out / -series-out
// / -series-json export files and returns the end-of-run summary (trace
// tallies, event-log tallies, series sparklines, and the -doctor
// report), ready for the command to print. Empty when
// every observability flag was off. It snapshots this setup's live
// pillars and the process metric registry; a command whose pillar state
// lives elsewhere (the sharded crawl merges per-shard snapshots) calls
// FinishWith directly.
func (s *Setup) Finish() (string, error) {
	var traceSnap *trace.Snapshot
	if s.Traces != nil {
		traceSnap = s.Traces.Snapshot()
	}
	var logSnap *evlog.Snapshot
	if s.Logs != nil {
		logSnap = s.Logs.Snapshot()
	}
	var seriesSnap *series.Snapshot
	if s.Series != nil {
		seriesSnap = s.Series.Snapshot()
	}
	var profSnap *prof.Snapshot
	if s.Prof != nil {
		profSnap = s.Prof.Snapshot()
	}
	return s.FinishWith(traceSnap, logSnap, seriesSnap, profSnap, obs.Default().Snapshot())
}

// FinishWith is Finish over caller-supplied snapshots: the same export
// files, tallies, and -doctor report, but rendered from the given trace,
// log, and series snapshots and diagnosing the given metric snapshot.
// Nil pillar snapshots are treated as "flag off".
func (s *Setup) FinishWith(traceSnap *trace.Snapshot, logSnap *evlog.Snapshot, seriesSnap *series.Snapshot, profSnap *prof.Snapshot, metrics obs.Snapshot) (string, error) {
	return s.FinishWithDoctor(traceSnap, logSnap, seriesSnap, profSnap, metrics, nil)
}

// FinishWithDoctor is FinishWith with a separate doctor input: the
// export files and tallies render from the pillar snapshots, while the
// -doctor diagnosis reads diag. A supervised sharded crawl uses this to
// diagnose the crawl and supervision pillars together without letting
// supervision events into the crawl export files (which must stay
// byte-identical to an unsupervised run's). A nil diag diagnoses the
// export snapshots themselves.
func (s *Setup) FinishWithDoctor(traceSnap *trace.Snapshot, logSnap *evlog.Snapshot, seriesSnap *series.Snapshot, profSnap *prof.Snapshot, metrics obs.Snapshot, diag *doctor.Input) (string, error) {
	var b strings.Builder
	if traceSnap != nil {
		counts := traceSnap.ErrClassCounts()
		fmt.Fprintf(&b, "traces: %d retained", len(traceSnap.Traces))
		for _, cl := range trace.SortedErrClasses(counts) {
			fmt.Fprintf(&b, ", %s=%d", cl, counts[cl])
		}
		b.WriteByte('\n')
		if *s.f.TraceOut != "" {
			if err := os.WriteFile(*s.f.TraceOut, []byte(traceSnap.Text()), 0o644); err != nil {
				return b.String(), err
			}
			fmt.Fprintf(&b, "trace export (text) written to %s\n", *s.f.TraceOut)
		}
		if *s.f.TraceChrome != "" {
			blob, err := traceSnap.Chrome()
			if err != nil {
				return b.String(), err
			}
			if err := os.WriteFile(*s.f.TraceChrome, blob, 0o644); err != nil {
				return b.String(), err
			}
			fmt.Fprintf(&b, "trace export (Perfetto) written to %s\n", *s.f.TraceChrome)
		}
	}
	if logSnap != nil {
		fmt.Fprintf(&b, "event log: %d records retained (%d emitted", len(logSnap.Records), logSnap.Stats.Emitted)
		levels := logSnap.LevelCounts()
		for _, lv := range []evlog.Level{evlog.Debug, evlog.Info, evlog.Warn, evlog.Error} {
			if n := levels[lv.String()]; n > 0 {
				fmt.Fprintf(&b, ", %s=%d", lv, n)
			}
		}
		b.WriteString(")\n")
		if *s.f.LogOut != "" {
			if err := os.WriteFile(*s.f.LogOut, []byte(logSnap.Logfmt()), 0o644); err != nil {
				return b.String(), err
			}
			fmt.Fprintf(&b, "event-log export (logfmt) written to %s\n", *s.f.LogOut)
		}
	}
	if seriesSnap != nil {
		var samples int64
		for _, sd := range seriesSnap.Series {
			samples += sd.Total
		}
		fmt.Fprintf(&b, "series: %d series, %d samples on the virtual clock\n", len(seriesSnap.Series), samples)
		for _, line := range strings.Split(strings.TrimSuffix(seriesSnap.TextWidth(32), "\n"), "\n") {
			if line != "" {
				fmt.Fprintf(&b, "  %s\n", line)
			}
		}
		if *s.f.SeriesOut != "" {
			if err := os.WriteFile(*s.f.SeriesOut, []byte(seriesSnap.CSV()), 0o644); err != nil {
				return b.String(), err
			}
			fmt.Fprintf(&b, "series export (CSV) written to %s\n", *s.f.SeriesOut)
		}
		if *s.f.SeriesJSON != "" {
			blob, err := seriesSnap.JSON()
			if err != nil {
				return b.String(), err
			}
			if err := os.WriteFile(*s.f.SeriesJSON, blob, 0o644); err != nil {
				return b.String(), err
			}
			fmt.Fprintf(&b, "series export (JSON) written to %s\n", *s.f.SeriesJSON)
		}
	}
	if profSnap != nil {
		exp := profSnap.Export()
		fmt.Fprintf(&b, "profile: %d scopes, %d virtual ms attributed\n",
			len(exp.Scopes), exp.TotalVirtualMs)
		for _, line := range strings.Split(strings.TrimSuffix(profSnap.TopK(*s.f.ProfTopK), "\n"), "\n") {
			if line != "" {
				fmt.Fprintf(&b, "  %s\n", line)
			}
		}
		if *s.f.ProfOut != "" {
			blob, err := profSnap.JSON()
			if err != nil {
				return b.String(), err
			}
			if err := os.WriteFile(*s.f.ProfOut, blob, 0o644); err != nil {
				return b.String(), err
			}
			fmt.Fprintf(&b, "profile export (JSON) written to %s\n", *s.f.ProfOut)
		}
		if *s.f.ProfFolded != "" {
			if err := os.WriteFile(*s.f.ProfFolded, []byte(profSnap.Folded()), 0o644); err != nil {
				return b.String(), err
			}
			fmt.Fprintf(&b, "profile export (folded) written to %s\n", *s.f.ProfFolded)
		}
	}
	if *s.f.DoctorOn {
		if diag == nil {
			diag = &doctor.Input{
				Metrics: metrics,
				Traces:  traceSnap,
				Logs:    logSnap,
				Series:  seriesSnap,
				Profile: profSnap,
			}
		}
		rep := doctor.Diagnose(*diag)
		b.WriteByte('\n')
		b.WriteString(rep.Text())
	}
	return b.String(), nil
}
