package cliobs

import (
	"flag"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"
)

// TestNamesMatchRegister pins the parity contract: the flag set Register
// installs is exactly Names(), no more, no less.
func TestNamesMatchRegister(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	Register(fs)
	got := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { got[f.Name] = true })
	want := Names()
	if len(got) != len(want) {
		t.Errorf("Register installed %d flags, Names() lists %d", len(got), len(want))
	}
	for _, name := range want {
		if !got[name] {
			t.Errorf("Names() lists %q but Register did not install it", name)
		}
		delete(got, name)
	}
	for name := range got {
		t.Errorf("Register installed %q but Names() does not list it", name)
	}
}

// TestFlagParityAcrossCommands is the cross-binary table test: every
// command must obtain the shared observability flags through
// cliobs.Register (parity by construction) and must not register any of
// the shared names itself (no shadowing, no drift).
func TestFlagParityAcrossCommands(t *testing.T) {
	shared := map[string]bool{}
	for _, n := range Names() {
		shared[n] = true
	}
	for _, cmd := range []string{"crawl", "analyze", "experiments"} {
		t.Run(cmd, func(t *testing.T) {
			src := filepath.Join("..", "..", "..", "cmd", cmd, "main.go")
			data, err := os.ReadFile(src)
			if err != nil {
				t.Fatalf("reading %s: %v", src, err)
			}
			fset := token.NewFileSet()
			file, err := parser.ParseFile(fset, src, data, 0)
			if err != nil {
				t.Fatalf("parsing %s: %v", src, err)
			}
			registered := false
			var shadowed []string
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if pkg.Name == "cliobs" && sel.Sel.Name == "Register" {
					registered = true
				}
				// Any flag.Xxx("name", ...) call whose first argument is a
				// shared observability flag name is shadowing.
				if pkg.Name == "flag" && len(call.Args) > 0 {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
						if name, err := strconv.Unquote(lit.Value); err == nil && shared[name] {
							shadowed = append(shadowed, name)
						}
					}
				}
				return true
			})
			if !registered {
				t.Errorf("cmd/%s does not call cliobs.Register — observability flags would drift", cmd)
			}
			if len(shadowed) > 0 {
				sort.Strings(shadowed)
				t.Errorf("cmd/%s registers shared observability flags itself: %v", cmd, shadowed)
			}
		})
	}
}

// TestSetupGating tables which flags bring up which pillar.
func TestSetupGating(t *testing.T) {
	cases := []struct {
		name       string
		args       []string
		wantTraces bool
		wantLogs   bool
		wantSeries bool
	}{
		{"none", nil, false, false, false},
		{"trace", []string{"-trace"}, true, false, false},
		{"trace-out", []string{"-trace-out", "x"}, true, false, false},
		{"trace-chrome", []string{"-trace-chrome", "x"}, true, false, false},
		{"log", []string{"-log"}, false, true, false},
		{"log-out", []string{"-log-out", "x"}, false, true, false},
		{"doctor", []string{"-doctor"}, false, true, false},
		{"series", []string{"-series"}, false, false, true},
		{"series-out", []string{"-series-out", "x"}, false, false, true},
		{"series-json", []string{"-series-json", "x"}, false, false, true},
		{"debug-addr", []string{"-debug-addr", "127.0.0.1:0"}, true, true, true},
		{"both", []string{"-trace", "-log"}, true, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			f := Register(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			s := f.Setup(7)
			if got := s.Traces != nil; got != tc.wantTraces {
				t.Errorf("Traces attached = %v, want %v", got, tc.wantTraces)
			}
			if got := s.Logs != nil; got != tc.wantLogs {
				t.Errorf("Logs attached = %v, want %v", got, tc.wantLogs)
			}
			if got := s.Series != nil; got != tc.wantSeries {
				t.Errorf("Series attached = %v, want %v", got, tc.wantSeries)
			}
		})
	}
}

// TestFinishExportsAndDoctor runs the full Finish path: log export file,
// summary tallies, and the doctor report appended under -doctor.
func TestFinishExportsAndDoctor(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "run.logfmt")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-log-out", logPath, "-doctor"}); err != nil {
		t.Fatal(err)
	}
	s := f.Setup(7)
	lg := s.Logs.Logger("cliobs.test")
	lg.Info("test.event", 1)
	lg.Warn("test.warn", 2)

	summary, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatalf("log export not written: %v", err)
	}
	if !strings.Contains(string(data), "msg=test.event") {
		t.Errorf("log export missing emitted record:\n%s", data)
	}
	if !strings.Contains(summary, "event log: 2 records retained") {
		t.Errorf("summary missing event-log tally:\n%s", summary)
	}
	if !strings.Contains(summary, "crawl doctor:") {
		t.Errorf("summary missing doctor report:\n%s", summary)
	}
}

// TestFinishSeriesExports runs the series half of the Finish path: CSV
// and JSON export files plus the sparkline summary block.
func TestFinishSeriesExports(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "run.csv")
	jsonPath := filepath.Join(dir, "run.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-series-out", csvPath, "-series-json", jsonPath}); err != nil {
		t.Fatal(err)
	}
	s := f.Setup(7)
	for i := 0; i < 10; i++ {
		s.Series.Observe("crawler.fetch.ok", int64(i)*1000, float64(i*10))
	}

	summary, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "series: 1 series, 10 samples on the virtual clock") {
		t.Errorf("summary missing series tally:\n%s", summary)
	}
	if !strings.Contains(summary, "▁") || !strings.Contains(summary, "█") {
		t.Errorf("summary missing sparkline glyphs:\n%s", summary)
	}
	csvData, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatalf("CSV export not written: %v", err)
	}
	if !strings.HasPrefix(string(csvData), "series,kind,tier,") ||
		!strings.Contains(string(csvData), "crawler.fetch.ok,raw,") {
		t.Errorf("CSV export malformed:\n%s", csvData)
	}
	jsonData, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatalf("JSON export not written: %v", err)
	}
	if !strings.Contains(string(jsonData), `"crawler.fetch.ok"`) {
		t.Errorf("JSON export missing series:\n%s", jsonData)
	}
}
