// Package obs is the repo's dependency-free observability substrate:
// atomic counters, gauges, fixed-bucket histograms, and lightweight spans
// collected in a named registry with snapshot/diff/merge and deterministic
// text/JSON rendering.
//
// The paper's war stories are measurement stories — the 20-minute
// dictionary loads (§4.2), the DoP capped by 6-20 GB workers (§4.2), the
// 3-4 docs/sec fetch rate (§4.1), tools crashing on degenerate pages (§5).
// Every hot path in this repo (dataflow executor, focused crawler, fact
// store, near-dedup index) reports into an obs.Registry so those numbers
// are observable on every run, and so later performance PRs have a uniform
// substrate to benchmark against.
//
// Naming scheme: dotted lower-case paths, component first —
//
//	crawler.fetch.ok              counter   successful downloads
//	crawler.cycle.fetched         histogram fetches per generate/fetch cycle
//	dataflow.op.03.pos_tag.in     counter   records into plan node 3
//	dataflow.op.03.pos_tag.ms     histogram per-record UDF latency
//	store.write.records           counter   fact-database rows written
//
// All metric types are safe for concurrent use. A Snapshot is a plain
// value: Diff subtracts a baseline (per-interval rates), Merge folds
// shard registries together, Text/JSON render deterministically (sorted
// names) for golden tests and end-of-run dumps.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n should be >= 0; Diff reports resets as negative deltas).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, records in flight).
type Gauge struct{ v atomic.Int64 }

// Set stores the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max raises the gauge to n if n is larger (high-water marks).
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Clock supplies the current time for span timing. Registries default to
// the wall clock; tests (and virtual-time harnesses) inject their own via
// Registry.SetClock so span durations become deterministic.
type Clock func() time.Time

// Histogram counts observations into fixed buckets. Bucket i counts
// observations v with bounds[i-1] < v <= bounds[i]; one extra overflow
// bucket catches v > bounds[len-1] (rendered as +Inf).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated

	// clock is inherited from the owning registry (atomic so SetClock can
	// retarget live histograms without racing span starts); nil = wall.
	clock atomic.Pointer[Clock]
}

// DefaultMsBuckets is the standard latency bucket layout (milliseconds),
// spanning sub-millisecond UDF calls to the paper's 20-minute dictionary
// loads.
var DefaultMsBuckets = []float64{
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 30000, 60000, 300000, 1200000,
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultMsBuckets
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	// Drop duplicates and non-finite bounds.
	out := bs[:0]
	for _, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if len(out) == 0 || b != out[len(out)-1] {
			out = append(out, b)
		}
	}
	return &Histogram{bounds: out, counts: make([]atomic.Int64, len(out)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. v <= bounds[i]
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records a duration in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// now reads the histogram's clock (the owning registry's, wall by default).
func (h *Histogram) now() time.Time {
	if c := h.clock.Load(); c != nil {
		return (*c)()
	}
	return time.Now()
}

// Start begins a span into this histogram — the unnamed counterpart of
// Registry.StartSpan for hot paths that already hold the histogram.
// Spans are the only sanctioned wall-clock timer outside this package
// (the lintx determinism analyzer enforces that), and they honor the
// registry's injected Clock so virtual-time tests stay deterministic.
func (h *Histogram) Start() Span { return Span{h: h, start: h.now()} }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Span times one operation into a histogram: s := reg.StartSpan(name);
// defer s.End(). Spans are values; creating one costs a map lookup and a
// clock read.
type Span struct {
	h     *Histogram
	start time.Time
}

// End records the elapsed time (milliseconds) on the histogram's clock and
// returns it.
func (s Span) End() time.Duration {
	if s.h == nil {
		return time.Since(s.start)
	}
	d := s.h.now().Sub(s.start)
	s.h.ObserveDuration(d)
	return d
}

// Registry is a named collection of metrics. Metrics are get-or-create:
// the first caller of a name determines the metric (and, for histograms,
// the bucket layout); later callers receive the same instance. Counters,
// gauges, and histograms live in separate namespaces.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	clock    *Clock // nil = wall clock; inherited by histograms at creation
}

// SetClock makes every span started from this registry (including existing
// histograms' Start) read the given clock instead of the wall clock. A nil
// clock restores wall time. Safe to call while spans are being started.
func (r *Registry) SetClock(c Clock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var p *Clock
	if c != nil {
		p = &c
	}
	r.clock = p
	for _, h := range r.hists {
		h.clock.Store(p)
	}
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// std is the process-wide default registry.
var std = New()

// Default returns the process-wide registry — the one `--metrics` dumps.
// Components that are not handed an explicit registry report here.
func Default() *Registry { return std }

// Or returns r, or the default registry when r is nil.
func Or(r *Registry) *Registry {
	if r == nil {
		return std
	}
	return r
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds if needed (DefaultMsBuckets when none are given). The
// bounds of an existing histogram are never changed.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		h.clock.Store(r.clock)
		r.hists[name] = h
	}
	return h
}

// StartSpan starts timing into histogram <name>.ms on the registry clock.
func (r *Registry) StartSpan(name string) Span {
	h := r.Histogram(name + ".ms")
	return Span{h: h, start: h.now()}
}
