package debugserv

import (
	"encoding/json"
	"strings"
	"testing"

	"webtextie/internal/obs/prof"
)

// sampleProf builds a profiler with a small crawl-stage tree: three
// virtually-costed stages under a wall-bracketed cycle scope.
func sampleProf() *prof.Profiler {
	p := prof.New(prof.Config{})
	h := p.Scope("crawl.cycle").Enter()
	p.Scope("crawl.cycle.fetch").Add(10, 900)
	p.Scope("crawl.cycle.filter").Add(8, 80)
	p.Scope("crawl.cycle.classify").Add(6, 60)
	h.Exit()
	return p
}

// profOptions is sampleOptions plus the profiler pillar.
func profOptions() Options {
	o := sampleOptions()
	o.Prof = sampleProf()
	return o
}

func TestProfileEndpoint(t *testing.T) {
	h := Handler(profOptions())

	// Text default: the top-k table, self-descending.
	code, body := get(t, h, "/profile")
	if code != 200 {
		t.Fatalf("text status %d:\n%s", code, body)
	}
	for _, want := range []string{"SCOPE", "crawl.cycle.fetch", "TOTAL"} {
		if !strings.Contains(body, want) {
			t.Fatalf("text missing %q:\n%s", want, body)
		}
	}
	if strings.Index(body, "crawl.cycle.fetch") > strings.Index(body, "crawl.cycle.filter") {
		t.Fatalf("top-k not self-descending:\n%s", body)
	}

	// topk limits the table rows (header + k rows + total).
	code, body = get(t, h, "/profile?topk=1")
	if code != 200 || strings.Contains(body, "crawl.cycle.filter") || !strings.Contains(body, "crawl.cycle.fetch") {
		t.Fatalf("topk=1: %d\n%s", code, body)
	}

	// Scope narrowing.
	code, body = get(t, h, "/profile?scope=classify")
	if code != 200 || strings.Contains(body, "crawl.cycle.fetch") || !strings.Contains(body, "crawl.cycle.classify") {
		t.Fatalf("scope filter: %d\n%s", code, body)
	}

	// Folded flame stacks: dots become semicolons, weights are self ms.
	code, body = get(t, h, "/profile?format=folded")
	if code != 200 || !strings.Contains(body, "crawl;cycle;fetch 900") {
		t.Fatalf("folded: %d\n%s", code, body)
	}

	// JSON is the Export shape with self/cum derivation.
	code, body = get(t, h, "/profile?format=json")
	if code != 200 {
		t.Fatalf("json status %d", code)
	}
	var exp struct {
		TotalVirtualMs int64 `json:"total_virtual_ms"`
		Scopes         []struct {
			Name   string `json:"name"`
			SelfMs int64  `json:"self_ms"`
			CumMs  int64  `json:"cum_ms"`
		} `json:"scopes"`
	}
	if err := json.Unmarshal([]byte(body), &exp); err != nil {
		t.Fatal(err)
	}
	if exp.TotalVirtualMs != 1040 {
		t.Fatalf("total_virtual_ms = %d, want 1040", exp.TotalVirtualMs)
	}
	for _, s := range exp.Scopes {
		if s.Name == "crawl.cycle" && (s.SelfMs != 0 || s.CumMs != 1040) {
			t.Fatalf("crawl.cycle self/cum = %d/%d, want 0/1040", s.SelfMs, s.CumMs)
		}
	}

	// Wall lane: brackets and wall ms, no virtual numbers.
	code, body = get(t, h, "/profile?format=wall")
	if code != 200 || !strings.Contains(body, "crawl.cycle brackets=1") {
		t.Fatalf("wall: %d\n%s", code, body)
	}

	// Off when no profiler is attached.
	if code, _ := get(t, Handler(sampleOptions()), "/profile"); code != 404 {
		t.Fatalf("without profiler: status %d, want 404", code)
	}

	// Listed on the index.
	if _, body := get(t, h, "/"); !strings.Contains(body, "/profile") {
		t.Fatal("index does not list /profile")
	}
}
