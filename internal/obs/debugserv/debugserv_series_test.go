package debugserv

import (
	"encoding/json"
	"strings"
	"testing"

	"webtextie/internal/obs/series"
)

// seriesOptions is sampleOptions plus a series recorder holding two
// ramping streams.
func seriesOptions() Options {
	o := sampleOptions()
	rec := series.New(series.DefaultConfig())
	for i := 0; i < 10; i++ {
		rec.Observe("crawler.fetch.ok", int64(i)*1000, float64(i*10))
		rec.Observe("fleet.rounds", int64(i)*1000, float64(i))
	}
	o.Series = rec
	return o
}

func TestTimeseriesEndpoint(t *testing.T) {
	h := Handler(seriesOptions())

	// Text: one line per series, with a sparkline.
	code, body := get(t, h, "/timeseries")
	if code != 200 {
		t.Fatalf("text status %d:\n%s", code, body)
	}
	for _, want := range []string{"crawler.fetch.ok", "fleet.rounds", "▁", "█"} {
		if !strings.Contains(body, want) {
			t.Fatalf("text missing %q:\n%s", want, body)
		}
	}

	// Name narrowing.
	code, body = get(t, h, "/timeseries?name=fleet")
	if code != 200 || strings.Contains(body, "crawler.fetch.ok") || !strings.Contains(body, "fleet.rounds") {
		t.Fatalf("name filter: %d\n%s", code, body)
	}

	// Width narrows the sparkline.
	code, body = get(t, h, "/timeseries?name=fleet&width=4")
	if code != 200 {
		t.Fatalf("width status %d", code)
	}
	line := strings.TrimSpace(body)
	if spark := line[strings.LastIndex(line, " ")+1:]; len([]rune(spark)) != 4 {
		t.Fatalf("sparkline width = %d glyphs, want 4: %q", len([]rune(spark)), spark)
	}

	// CSV and JSON renderings.
	code, body = get(t, h, "/timeseries?format=csv")
	if code != 200 || !strings.HasPrefix(body, "series,kind,tier,from_ms,to_ms,count,first,last,min,max,sum") {
		t.Fatalf("csv: %d\n%s", code, body)
	}
	code, body = get(t, h, "/timeseries?format=json&name=crawler")
	if code != 200 {
		t.Fatalf("json status %d", code)
	}
	var snap struct {
		Series []struct {
			Name  string `json:"name"`
			Total int64  `json:"total"`
		} `json:"series"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Series) != 1 || snap.Series[0].Name != "crawler.fetch.ok" || snap.Series[0].Total != 10 {
		t.Fatalf("json narrowed series: %+v", snap.Series)
	}

	// Off when no recorder is attached.
	if code, _ := get(t, Handler(sampleOptions()), "/timeseries"); code != 404 {
		t.Fatalf("without recorder: status %d, want 404", code)
	}

	// Listed on the index.
	if _, body := get(t, h, "/"); !strings.Contains(body, "/timeseries") {
		t.Fatal("index does not list /timeseries")
	}
}

// TestBadQueryParamsAreRejected audits every endpooint: a query parameter
// that is present but unparsable must produce 400, never a silently
// unfiltered or misformatted response.
func TestBadQueryParamsAreRejected(t *testing.T) {
	o := seriesOptions()
	o.Logs = sampleSink(0) // from debugserv_logs_test.go
	o.Prof = sampleProf()  // from debugserv_prof_test.go
	h := Handler(o)
	bad := []string{
		"/metrics?format=yaml",
		"/traces?format=yaml",
		"/traces?limit=ten",
		"/traces?limit=-3",
		"/traces?pinned=maybe",
		"/trace?id=zzz",
		"/trace?id=1&format=yaml",
		"/logs?level=loud",
		"/logs?trace=zzz",
		"/logs?limit=ten",
		"/logs?format=yaml",
		"/doctor?severity=fatal",
		"/doctor?format=yaml",
		"/timeseries?format=yaml",
		"/timeseries?width=wide",
		"/timeseries?width=0",
		"/timeseries?width=-2",
		"/profile?format=yaml",
		"/profile?topk=ten",
		"/profile?topk=-1",
	}
	for _, path := range bad {
		if code, body := get(t, h, path); code != 400 {
			t.Errorf("%s: status %d, want 400 (body %q)", path, code, strings.TrimSpace(body))
		}
	}
	// The corresponding well-formed requests all succeed.
	good := []string{
		"/metrics?format=json",
		"/traces?format=summary&limit=10&pinned=true",
		"/logs?level=warn&limit=5&format=logfmt",
		"/doctor?severity=warning&format=json",
		"/timeseries?width=8&format=csv",
		"/profile?topk=0&format=text",
		"/profile?scope=crawl&format=folded",
	}
	for _, path := range good {
		if code, _ := get(t, h, path); code != 200 {
			t.Errorf("%s: status %d, want 200", path, code)
		}
	}
	// The Go pprof mux rides the same handler; its pages must stay up.
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/cmdline"} {
		if code, _ := get(t, h, path); code != 200 {
			t.Errorf("%s: status %d, want 200", path, code)
		}
	}
}
