package debugserv

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"webtextie/internal/obs"
	"webtextie/internal/obs/trace"
)

// sampleRecorder builds a recorder holding one ordinary trace and one
// pinned (quarantined) trace.
func sampleRecorder() *trace.Recorder {
	rec := trace.NewRecorder(trace.DefaultConfig(3))
	ok := rec.Start("crawler.url", "http://h1/ok", 0, trace.String("host", "h1"))
	ok.Event("frontier.inject", 0, trace.Int("depth", 0))
	ok.Finish(100)
	bad := rec.Start("crawler.url", "http://h2/bad", 50, trace.String("host", "h2"))
	at := bad.StartSpan("crawler.fetch.attempt", 60, trace.Int("attempt", 0))
	at.Event("fetch.error", 70, trace.String("cause", "http_500"))
	at.End(70)
	bad.Error("quarantine", 80, trace.String("op", "fetch"))
	bad.Finish(90)
	return rec
}

func sampleOptions() Options {
	reg := obs.New()
	reg.Counter("pages.fetched.total").Add(42)
	return Options{
		Registry: reg,
		Traces:   sampleRecorder(),
		Progress: func() any { return map[string]int{"cycles": 7} },
	}
}

func get(t *testing.T, h http.Handler, path string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	return rw.Code, rw.Body.String()
}

func TestIndexListsEndpointsAndErrClasses(t *testing.T) {
	code, body := get(t, Handler(sampleOptions()), "/")
	if code != 200 {
		t.Fatalf("index status %d", code)
	}
	for _, want := range []string{"/metrics", "/traces", "/progress", "/debug/pprof/", "quarantine"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %q:\n%s", want, body)
		}
	}
}

func TestMetricsTextAndJSON(t *testing.T) {
	h := Handler(sampleOptions())
	if code, body := get(t, h, "/metrics"); code != 200 || !strings.Contains(body, "pages.fetched.total") {
		t.Fatalf("text metrics: %d\n%s", code, body)
	}
	code, body := get(t, h, "/metrics?format=json")
	if code != 200 {
		t.Fatalf("json metrics status %d", code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pages.fetched.total"] != 42 {
		t.Fatalf("counter lost in json: %v", snap.Counters)
	}
}

func TestTracesFilters(t *testing.T) {
	h := Handler(sampleOptions())

	if _, body := get(t, h, "/traces"); !strings.Contains(body, "http://h1/ok") ||
		!strings.Contains(body, "http://h2/bad") {
		t.Fatalf("unfiltered /traces incomplete:\n%s", body)
	}
	if _, body := get(t, h, "/traces?pinned=1"); strings.Contains(body, "http://h1/ok") ||
		!strings.Contains(body, "error class=quarantine") {
		t.Fatalf("pinned filter wrong:\n%s", body)
	}
	if _, body := get(t, h, "/traces?url=h1"); strings.Contains(body, "http://h2/bad") {
		t.Fatalf("url filter wrong:\n%s", body)
	}
	if _, body := get(t, h, "/traces?err=quarantine&op=fetch.attempt"); !strings.Contains(body, "http://h2/bad") {
		t.Fatalf("err+op filter wrong:\n%s", body)
	}
	if _, body := get(t, h, "/traces?format=summary"); !strings.Contains(body, "err=quarantine") {
		t.Fatalf("summary format wrong:\n%s", body)
	}
	_, body := get(t, h, "/traces?format=chrome")
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.TraceEvents) == 0 {
		t.Fatalf("chrome format unparseable (%v):\n%s", err, body)
	}
}

func TestTraceByID(t *testing.T) {
	o := sampleOptions()
	h := Handler(o)
	pinned := o.Traces.Snapshot().Pinned()
	if len(pinned) != 1 {
		t.Fatalf("want 1 pinned sample trace, got %d", len(pinned))
	}
	code, body := get(t, h, "/trace?id="+pinned[0].ID.String())
	if code != 200 || !strings.Contains(body, "http://h2/bad") {
		t.Fatalf("/trace by id: %d\n%s", code, body)
	}
	if code, _ := get(t, h, "/trace?id=zzzz"); code != 400 {
		t.Fatalf("bad id accepted: %d", code)
	}
	if code, _ := get(t, h, "/trace?id=00000000000000ff"); code != 404 {
		t.Fatalf("unknown id not 404: %d", code)
	}
}

func TestProgressJSON(t *testing.T) {
	code, body := get(t, Handler(sampleOptions()), "/progress")
	if code != 200 {
		t.Fatalf("progress status %d", code)
	}
	var p map[string]int
	if err := json.Unmarshal([]byte(body), &p); err != nil || p["cycles"] != 7 {
		t.Fatalf("progress payload wrong (%v): %s", err, body)
	}
}

func TestNilSourcesAre404(t *testing.T) {
	h := Handler(Options{})
	for _, path := range []string{"/metrics", "/traces", "/trace?id=1", "/progress"} {
		if code, _ := get(t, h, path); code != 404 {
			t.Fatalf("%s with nil source: %d", path, code)
		}
	}
}

// TestLiveServerServesPinnedTrace is the live half of the acceptance
// criterion: a real HTTP GET against a running server returns the pinned
// lineage, while the recorder is still being written to.
func TestLiveServerServesPinnedTrace(t *testing.T) {
	o := sampleOptions()
	srv, err := Start("127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			tc := o.Traces.Start("crawler.url", "http://live/concurrent", int64(i))
			tc.Finish(int64(i) + 1)
		}
	}()

	resp, err := http.Get("http://" + srv.Addr() + "/traces?pinned=1")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("live /traces status %d", resp.StatusCode)
	}
	for _, want := range []string{"http://h2/bad", "span crawler.fetch.attempt", "fetch.error", "error class=quarantine"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("live pinned trace missing %q:\n%s", want, body)
		}
	}
	<-done

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + srv.Addr() + "/"); err == nil {
		t.Fatal("server still serving after Close")
	}
}
