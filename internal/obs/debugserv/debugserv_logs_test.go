package debugserv

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/trace"
)

// sampleSink builds a sink with records across components, levels, and
// one trace-correlated record.
func sampleSink(tid trace.TraceID) *evlog.Sink {
	sink := evlog.NewSink(evlog.DefaultConfig(3))
	frontier := sink.Logger("crawler.frontier")
	frontier.Debug("frontier.inject", 0, trace.String("url", "http://h1/ok"))
	frontier.Warn("frontier.exhausted", 50, trace.Int("known", 12))
	fetch := sink.Logger("crawler.fetch")
	fetch.For(tid).Warn("fetch.error", 60, trace.String("cause", "http_500"))
	fetch.Info("fetch.ok", 70, trace.String("url", "http://h1/ok"))
	return sink
}

func logOptions() (Options, trace.TraceID) {
	o := sampleOptions()
	pinned := o.Traces.Snapshot().Pinned()
	tid := pinned[0].ID
	o.Logs = sampleSink(tid)
	return o, tid
}

func TestLogsFilters(t *testing.T) {
	o, tid := logOptions()
	h := Handler(o)

	if code, body := get(t, h, "/logs"); code != 200 ||
		!strings.Contains(body, "frontier.inject") || !strings.Contains(body, "fetch.error") {
		t.Fatalf("unfiltered /logs: %d\n%s", code, body)
	}
	if _, body := get(t, h, "/logs?component=crawler.frontier"); strings.Contains(body, "fetch.ok") ||
		!strings.Contains(body, "frontier.exhausted") {
		t.Fatalf("component filter wrong:\n%s", body)
	}
	if _, body := get(t, h, "/logs?level=warn"); strings.Contains(body, "frontier.inject") ||
		!strings.Contains(body, "fetch.error") {
		t.Fatalf("level filter wrong:\n%s", body)
	}
	if _, body := get(t, h, "/logs?msg=fetch.ok"); strings.Contains(body, "frontier.inject") ||
		!strings.Contains(body, "fetch.ok") {
		t.Fatalf("msg filter wrong:\n%s", body)
	}
	if _, body := get(t, h, "/logs?trace="+tid.String()); !strings.Contains(body, "fetch.error") ||
		strings.Contains(body, "fetch.ok") {
		t.Fatalf("trace filter wrong:\n%s", body)
	}
	if _, body := get(t, h, "/logs?limit=1"); strings.Count(body, "\n@") != 0 ||
		!strings.HasPrefix(body, "@") {
		t.Fatalf("limit not applied:\n%s", body)
	}
	if _, body := get(t, h, "/logs?format=logfmt"); !strings.Contains(body, "msg=fetch.error") {
		t.Fatalf("logfmt format wrong:\n%s", body)
	}
	// A typo'd level must 400 rather than silently returning the full
	// debug-level log.
	if code, body := get(t, h, "/logs?level=warning"); code != 400 {
		t.Fatalf("bad level not rejected: %d\n%s", code, body)
	}
	_, body := get(t, h, "/logs?format=json")
	var doc struct {
		Records []map[string]any `json:"records"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil || len(doc.Records) == 0 {
		t.Fatalf("json format unparseable (%v):\n%s", err, body)
	}
}

func TestDoctorEndpoint(t *testing.T) {
	o, _ := logOptions()
	// Trip the breaker-storm rule through the metrics pillar.
	o.Registry.Counter("crawler.breaker.opened").Add(5)
	h := Handler(o)

	code, body := get(t, h, "/doctor")
	if code != 200 || !strings.Contains(body, "breaker-storm") {
		t.Fatalf("/doctor: %d\n%s", code, body)
	}
	// The log pillar contributes evidence to the same finding.
	if !strings.Contains(body, "/logs?component=crawler.breaker") &&
		!strings.Contains(body, "crawler.breaker.opened=5") {
		t.Fatalf("/doctor missing fused evidence:\n%s", body)
	}
	// frontier.exhausted comes from the log pillar alone.
	if !strings.Contains(body, "frontier-exhausted") {
		t.Fatalf("/doctor missing log-pillar finding:\n%s", body)
	}
	if _, body := get(t, h, "/doctor?severity=critical"); strings.Contains(body, "frontier-exhausted") {
		t.Fatalf("severity filter wrong:\n%s", body)
	}
	if _, body := get(t, h, "/doctor?rule=breaker"); strings.Contains(body, "frontier-exhausted") ||
		!strings.Contains(body, "breaker-storm") {
		t.Fatalf("rule filter wrong:\n%s", body)
	}
	_, body = get(t, h, "/doctor?format=json")
	var rep struct {
		Healthy  bool             `json:"healthy"`
		Findings []map[string]any `json:"findings"`
	}
	if err := json.Unmarshal([]byte(body), &rep); err != nil || rep.Healthy || len(rep.Findings) == 0 {
		t.Fatalf("doctor json unparseable (%v):\n%s", err, body)
	}
}

func TestLogsAndDoctorOff(t *testing.T) {
	// No sink: /logs is off. No surfaces at all: /doctor is off too.
	h := Handler(Options{})
	for _, path := range []string{"/logs", "/doctor"} {
		if code, _ := get(t, h, path); code != 404 {
			t.Fatalf("%s with nil sources: not 404", path)
		}
	}
	// Any one pillar brings /doctor up.
	h = Handler(Options{Registry: obs.New()})
	if code, _ := get(t, h, "/doctor"); code != 200 {
		t.Fatalf("/doctor with metrics only: not 200")
	}
}

// TestContentTypes pins the Content-Type of every endpoint and format.
func TestContentTypes(t *testing.T) {
	o, _ := logOptions()
	o.Prof = sampleProf() // from debugserv_prof_test.go
	pinned := o.Traces.Snapshot().Pinned()
	id := pinned[0].ID.String()
	h := Handler(o)

	const text = "text/plain; charset=utf-8"
	const jsonCT = "application/json"
	cases := []struct {
		path string
		want string
	}{
		{"/", text},
		{"/metrics", text},
		{"/metrics?format=json", jsonCT},
		{"/traces", text},
		{"/traces?format=summary", text},
		{"/traces?format=json", jsonCT},
		{"/traces?format=chrome", jsonCT},
		{"/trace?id=" + id, text},
		{"/trace?id=" + id + "&format=json", jsonCT},
		{"/logs", text},
		{"/logs?format=logfmt", text},
		{"/logs?format=json", jsonCT},
		{"/doctor", text},
		{"/doctor?format=json", jsonCT},
		{"/profile", text},
		{"/profile?format=folded", text},
		{"/profile?format=wall", text},
		{"/profile?format=json", jsonCT},
		{"/progress", jsonCT},
	}
	for _, tc := range cases {
		req := httptest.NewRequest("GET", tc.path, nil)
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, req)
		if rw.Code != 200 {
			t.Errorf("%s: status %d", tc.path, rw.Code)
			continue
		}
		if got := rw.Header().Get("Content-Type"); got != tc.want {
			t.Errorf("%s: Content-Type = %q, want %q", tc.path, got, tc.want)
		}
	}
}
