// Package debugserv is the opt-in live debug server: a stdlib-only HTTP
// endpoint exposing the process's metrics registry, the trace recorder's
// recent and pinned lineages, a caller-supplied progress snapshot, and
// net/http/pprof. Binaries enable it with -debug-addr; nothing is served
// unless the flag is set, and the server holds no state of its own — every
// request renders a fresh snapshot, so the handlers are safe while the
// crawl or dataflow is running.
package debugserv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"webtextie/internal/obs"
	"webtextie/internal/obs/doctor"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
)

// Options wires the server to the process's observability surfaces. Any
// field may be nil; the corresponding endpoint reports that it is off.
type Options struct {
	// Registry backs /metrics (text and JSON) and feeds /doctor.
	Registry *obs.Registry
	// Traces backs /traces and /trace and feeds /doctor.
	Traces *trace.Recorder
	// Logs backs /logs and feeds /doctor.
	Logs *evlog.Sink
	// Series backs /timeseries and feeds /doctor's time-aware rules.
	Series *series.Recorder
	// Prof backs /profile and feeds /doctor's cost rules.
	Prof *prof.Profiler
	// Progress backs /progress: called per request, must be safe to call
	// concurrently with the workload, and its result must JSON-marshal.
	Progress func() any
}

// Handler builds the debug mux. Exposed separately from Start so tests can
// drive it with httptest and binaries can mount it wherever they like.
func Handler(o Options) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", o.index)
	mux.HandleFunc("/metrics", o.metrics)
	mux.HandleFunc("/traces", o.traces)
	mux.HandleFunc("/trace", o.traceByID)
	mux.HandleFunc("/logs", o.logs)
	mux.HandleFunc("/timeseries", o.timeseries)
	mux.HandleFunc("/profile", o.profile)
	mux.HandleFunc("/doctor", o.doctor)
	mux.HandleFunc("/progress", o.progress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running debug server.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr and serves the debug mux in a background
// goroutine. Returns once the listener is bound, so Addr is immediately
// valid (addr may use port 0).
func Start(addr string, o Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debugserv: %w", err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: Handler(o)}}
	//lintx:ignore goroleak Serve returns when Server.Close closes the listener
	go func() {
		// ErrServerClosed after Close is the expected shutdown path.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound listen address (resolves port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down and releases the listener.
func (s *Server) Close() error { return s.srv.Close() }

func (o Options) index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	b.WriteString("debug server\n\n")
	b.WriteString("/metrics            metric registry (?format=json)\n")
	b.WriteString("/traces             recent+pinned traces (?url= &op= &err= &pinned=1 &limit= &format=text|json|chrome|summary)\n")
	b.WriteString("/trace?id=<hex>     one trace by ID\n")
	b.WriteString("/logs               event log (?component= &level= &msg= &trace= &limit= &format=text|json|logfmt)\n")
	b.WriteString("/timeseries         virtual-time metric series (?name= &width= &format=text|csv|json)\n")
	b.WriteString("/profile            cost profile (?scope= &topk= &format=text|folded|json|wall)\n")
	b.WriteString("/doctor             ranked crawl diagnosis (?severity= &rule= &format=json)\n")
	b.WriteString("/progress           live workload progress (JSON)\n")
	b.WriteString("/debug/pprof/       runtime profiles\n")
	if o.Traces != nil {
		counts := o.Traces.Snapshot().ErrClassCounts()
		if len(counts) > 0 {
			b.WriteString("\nerror classes:\n")
			for _, c := range trace.SortedErrClasses(counts) {
				fmt.Fprintf(&b, "  %-20s %d\n", c, counts[c])
			}
		}
	}
	_, _ = w.Write([]byte(b.String()))
}

// checkFormat validates the format query parameter against a handler's
// whitelist. A present-but-unknown format is an error — falling through
// to the text rendering would silently ignore what the caller asked for.
func checkFormat(r *http.Request, allowed ...string) (string, error) {
	raw := r.URL.Query().Get("format")
	for _, a := range allowed {
		if raw == a {
			return raw, nil
		}
	}
	return "", fmt.Errorf("bad format %q (want %s)", raw, strings.Join(allowed[1:], "|"))
}

// parseLimit validates the limit query parameter (0 when absent). A
// present-but-unparsable limit is an error — ignoring it would silently
// return the unbounded result.
func parseLimit(r *http.Request) (int, error) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad limit %q (want a non-negative integer)", raw)
	}
	return n, nil
}

func (o Options) metrics(w http.ResponseWriter, r *http.Request) {
	if o.Registry == nil {
		http.Error(w, "metrics off: no registry attached", http.StatusNotFound)
		return
	}
	format, err := checkFormat(r, "", "text", "json")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap := o.Registry.Snapshot()
	if format == "json" {
		writeJSONBlob(w, func() ([]byte, error) { return snap.JSON() })
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(snap.Text()))
}

// parseFilter maps /traces query parameters onto a trace.Filter. Present
// but unparsable parameters are errors, same contract as parseLogFilter.
func parseFilter(r *http.Request) (trace.Filter, error) {
	q := r.URL.Query()
	f := trace.Filter{
		Key:      q.Get("url"),
		Op:       q.Get("op"),
		ErrClass: q.Get("err"),
	}
	if f.Key == "" {
		f.Key = q.Get("key")
	}
	switch v := q.Get("pinned"); v {
	case "1", "true":
		f.PinnedOnly = true
	case "", "0", "false":
	default:
		return f, fmt.Errorf("bad pinned %q (want 1|true|0|false)", v)
	}
	n, err := parseLimit(r)
	if err != nil {
		return f, err
	}
	f.Limit = n
	return f, nil
}

func (o Options) traces(w http.ResponseWriter, r *http.Request) {
	if o.Traces == nil {
		http.Error(w, "tracing off: no recorder attached", http.StatusNotFound)
		return
	}
	f, err := parseFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	format, err := checkFormat(r, "", "text", "json", "chrome", "summary")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s := o.Traces.Snapshot().Filter(f)
	switch format {
	case "json":
		writeJSONBlob(w, s.JSON)
	case "chrome":
		w.Header().Set("Content-Disposition", `attachment; filename="trace.json"`)
		writeJSONBlob(w, s.Chrome)
	case "summary":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.Summary()))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.Text()))
	}
}

func (o Options) traceByID(w http.ResponseWriter, r *http.Request) {
	if o.Traces == nil {
		http.Error(w, "tracing off: no recorder attached", http.StatusNotFound)
		return
	}
	id, err := trace.ParseID(r.URL.Query().Get("id"))
	if err != nil {
		http.Error(w, "bad id: "+err.Error(), http.StatusBadRequest)
		return
	}
	format, err := checkFormat(r, "", "text", "json")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s := o.Traces.Snapshot()
	t := s.Find(id)
	if t == nil {
		http.Error(w, "trace not retained", http.StatusNotFound)
		return
	}
	one := &trace.Snapshot{StartSeq: s.StartSeq, Traces: []*trace.Trace{t}}
	if format == "json" {
		writeJSONBlob(w, one.JSON)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(one.Text()))
}

// parseLogFilter maps /logs query parameters onto an evlog.Filter. A
// level parameter that is present but unparsable is an error — falling
// through to MinLevel=Debug would silently return the full log.
func parseLogFilter(r *http.Request) (evlog.Filter, error) {
	q := r.URL.Query()
	f := evlog.Filter{
		Component: q.Get("component"),
		Msg:       q.Get("msg"),
	}
	if raw := q.Get("level"); raw != "" {
		lv, ok := evlog.ParseLevel(raw)
		if !ok {
			return f, fmt.Errorf("bad level %q (want debug|info|warn|error)", raw)
		}
		f.MinLevel = lv
	}
	if raw := q.Get("trace"); raw != "" {
		id, err := trace.ParseID(raw)
		if err != nil {
			return f, fmt.Errorf("bad trace %q: %v", raw, err)
		}
		f.Trace = uint64(id)
	}
	n, err := parseLimit(r)
	if err != nil {
		return f, err
	}
	f.Limit = n
	return f, nil
}

func (o Options) logs(w http.ResponseWriter, r *http.Request) {
	if o.Logs == nil {
		http.Error(w, "logging off: no sink attached", http.StatusNotFound)
		return
	}
	f, err := parseLogFilter(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	format, err := checkFormat(r, "", "text", "json", "logfmt")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s := o.Logs.Snapshot().Filter(f)
	switch format {
	case "json":
		writeJSONBlob(w, s.JSON)
	case "logfmt":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.Logfmt()))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.Text()))
	}
}

func (o Options) doctor(w http.ResponseWriter, r *http.Request) {
	if o.Registry == nil && o.Traces == nil && o.Logs == nil && o.Series == nil {
		http.Error(w, "doctor off: no observability surfaces attached", http.StatusNotFound)
		return
	}
	q := r.URL.Query()
	minSev, rule := doctor.Note, q.Get("rule")
	if raw := q.Get("severity"); raw != "" {
		sv, ok := doctor.ParseSeverity(raw)
		if !ok {
			http.Error(w, fmt.Sprintf("bad severity %q (want note|warning|critical)", raw), http.StatusBadRequest)
			return
		}
		minSev = sv
	}
	format, err := checkFormat(r, "", "text", "json")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	in := doctor.Input{}
	if o.Registry != nil {
		in.Metrics = o.Registry.Snapshot()
	}
	if o.Traces != nil {
		in.Traces = o.Traces.Snapshot()
	}
	if o.Logs != nil {
		in.Logs = o.Logs.Snapshot()
	}
	if o.Series != nil {
		in.Series = o.Series.Snapshot()
	}
	rep := doctor.Diagnose(in)
	if minSev != doctor.Note || rule != "" {
		rep = rep.Filter(minSev, rule)
	}
	if format == "json" {
		writeJSONBlob(w, rep.JSON)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(rep.Text()))
}

// timeseries serves the virtual-time series pillar: every sampled metric
// series with its sparkline, trend numbers, and raw/rollup exports.
func (o Options) timeseries(w http.ResponseWriter, r *http.Request) {
	if o.Series == nil {
		http.Error(w, "timeseries off: no recorder attached", http.StatusNotFound)
		return
	}
	format, err := checkFormat(r, "", "text", "csv", "json")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	width := 32
	if raw := q.Get("width"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("bad width %q (want a positive integer)", raw), http.StatusBadRequest)
			return
		}
		width = n
	}
	s := o.Series.Snapshot().Narrow(q.Get("name"))
	switch format {
	case "json":
		writeJSONBlob(w, s.JSON)
	case "csv":
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		_, _ = w.Write([]byte(s.CSV()))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.TextWidth(width)))
	}
}

// profile serves the cost-profiler pillar: the virtual-lane top-k
// table, folded flame-graph stacks, and JSON export, plus the wall
// lane's bracket totals.
func (o Options) profile(w http.ResponseWriter, r *http.Request) {
	if o.Prof == nil {
		http.Error(w, "profiling off: no profiler attached", http.StatusNotFound)
		return
	}
	format, err := checkFormat(r, "", "text", "folded", "json", "wall")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	topk := 20
	if raw := q.Get("topk"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("bad topk %q (want a non-negative integer; 0 = all)", raw), http.StatusBadRequest)
			return
		}
		topk = n
	}
	s := o.Prof.Snapshot().Narrow(q.Get("scope"))
	switch format {
	case "json":
		writeJSONBlob(w, s.JSON)
	case "folded":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.Folded()))
	case "wall":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.WallText()))
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(s.TopK(topk)))
	}
}

func (o Options) progress(w http.ResponseWriter, r *http.Request) {
	if o.Progress == nil {
		http.Error(w, "progress off: no source attached", http.StatusNotFound)
		return
	}
	writeJSONBlob(w, func() ([]byte, error) {
		return json.MarshalIndent(o.Progress(), "", "  ")
	})
}

func writeJSONBlob(w http.ResponseWriter, render func() ([]byte, error)) {
	blob, err := render()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(blob)
	if len(blob) > 0 && blob[len(blob)-1] != '\n' {
		_, _ = w.Write([]byte("\n"))
	}
}
