package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Error("Counter not get-or-create")
	}
	g := r.Gauge("q.depth")
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
	g.Max(10)
	g.Max(2)
	if g.Value() != 10 {
		t.Errorf("gauge after Max = %d, want 10", g.Value())
	}
	if r.Gauge("q.depth") != g {
		t.Error("Gauge not get-or-create")
	}
}

// TestHistogramBucketBoundaries pins the bucket convention: observation v
// lands in the first bucket whose bound satisfies v <= bound; values above
// every bound land in the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		want   []int64 // len(bounds)+1 after dedupe/sanitise
	}{
		{"exact-on-bound", []float64{1, 2, 5}, []float64{1, 2, 5}, []int64{1, 1, 1, 0}},
		{"just-above-bound", []float64{1, 2, 5}, []float64{1.0001, 2.5}, []int64{0, 1, 1, 0}},
		{"below-first", []float64{1, 2, 5}, []float64{0, -3}, []int64{2, 0, 0, 0}},
		{"overflow", []float64{1, 2, 5}, []float64{5.1, 1e9}, []int64{0, 0, 0, 2}},
		{"unsorted-bounds-sorted", []float64{5, 1, 2}, []float64{1.5}, []int64{0, 1, 0, 0}},
		{"duplicate-bounds-deduped", []float64{1, 1, 2}, []float64{0.5, 1.5}, []int64{1, 1, 0}},
		{"single-bucket", []float64{10}, []float64{3, 30}, []int64{1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.bounds)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			if len(h.counts) != len(tc.want) {
				t.Fatalf("bucket count = %d, want %d", len(h.counts), len(tc.want))
			}
			for i := range tc.want {
				if got := h.counts[i].Load(); got != tc.want[i] {
					t.Errorf("bucket %d = %d, want %d", i, got, tc.want[i])
				}
			}
			if h.Count() != int64(len(tc.obs)) {
				t.Errorf("Count = %d, want %d", h.Count(), len(tc.obs))
			}
		})
	}
}

func TestHistogramSum(t *testing.T) {
	h := newHistogram([]float64{10})
	for _, v := range []float64{1.5, 2.5, 4} {
		h.Observe(v)
	}
	if h.Sum() != 8 {
		t.Errorf("Sum = %v, want 8", h.Sum())
	}
}

func TestSpanRecords(t *testing.T) {
	r := New()
	s := r.StartSpan("work")
	time.Sleep(time.Millisecond)
	if d := s.End(); d <= 0 {
		t.Errorf("span duration = %v", d)
	}
	h, ok := r.Snapshot().Hist("work.ms")
	if !ok || h.Count != 1 {
		t.Fatalf("span histogram missing or empty: %+v", h)
	}
	if h.Sum <= 0 {
		t.Errorf("span sum = %v", h.Sum)
	}
}

func TestEmptyRegistry(t *testing.T) {
	r := New()
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Hists) != 0 {
		t.Fatalf("empty registry snapshot not empty: %+v", s)
	}
	if s.Text() != "" {
		t.Errorf("empty Text = %q", s.Text())
	}
	if d := s.Diff(s); len(d.Counters) != 0 {
		t.Errorf("empty Diff = %+v", d)
	}
	if m := s.Merge(s); len(m.Counters) != 0 {
		t.Errorf("empty Merge = %+v", m)
	}
	js, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(js) != "{}" {
		t.Errorf("empty JSON = %s", js)
	}
}

func TestSnapshotDiff(t *testing.T) {
	cases := []struct {
		name  string
		setup func(r *Registry) (before Snapshot)
		check func(t *testing.T, d Snapshot)
	}{
		{
			name: "counter-delta",
			setup: func(r *Registry) Snapshot {
				r.Counter("c").Add(10)
				before := r.Snapshot()
				r.Counter("c").Add(5)
				r.Counter("new").Inc()
				return before
			},
			check: func(t *testing.T, d Snapshot) {
				if d.Counter("c") != 5 || d.Counter("new") != 1 {
					t.Errorf("deltas = %+v", d.Counters)
				}
			},
		},
		{
			name: "gauge-keeps-current",
			setup: func(r *Registry) Snapshot {
				r.Gauge("g").Set(100)
				before := r.Snapshot()
				r.Gauge("g").Set(3)
				return before
			},
			check: func(t *testing.T, d Snapshot) {
				if d.Gauge("g") != 3 {
					t.Errorf("gauge = %d, want current value 3", d.Gauge("g"))
				}
			},
		},
		{
			name: "hist-delta",
			setup: func(r *Registry) Snapshot {
				h := r.Histogram("h", 1, 10)
				h.Observe(0.5)
				h.Observe(5)
				before := r.Snapshot()
				h.Observe(5)
				h.Observe(100)
				return before
			},
			check: func(t *testing.T, d Snapshot) {
				h, ok := d.Hist("h")
				if !ok {
					t.Fatal("hist missing from diff")
				}
				if h.Count != 2 || h.Sum != 105 {
					t.Errorf("count=%d sum=%v, want 2/105", h.Count, h.Sum)
				}
				want := []int64{0, 1, 1}
				for i, c := range h.Counts {
					if c != want[i] {
						t.Errorf("bucket %d = %d, want %d", i, c, want[i])
					}
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := New()
			before := tc.setup(r)
			tc.check(t, r.Snapshot().Diff(before))
		})
	}
}

func TestSnapshotMerge(t *testing.T) {
	a, b := New(), New()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only.b").Inc()
	a.Gauge("g").Set(2)
	b.Gauge("g").Set(5)
	a.Histogram("h", 1, 10).Observe(5)
	b.Histogram("h", 1, 10).Observe(0.5)
	// Mismatched layout under the same name degrades to count/sum.
	a.Histogram("mix", 1).Observe(2)
	b.Histogram("mix", 1, 2, 3).Observe(2)

	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counter("c") != 7 || m.Counter("only.b") != 1 {
		t.Errorf("counters = %+v", m.Counters)
	}
	if m.Gauge("g") != 7 {
		t.Errorf("gauge = %d, want 7", m.Gauge("g"))
	}
	h, _ := m.Hist("h")
	if h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("merged hist = %+v", h)
	}
	mix, _ := m.Hist("mix")
	if mix.Count != 2 || mix.Sum != 4 || mix.Bounds != nil || mix.Counts != nil {
		t.Errorf("mismatched-layout merge = %+v, want count/sum only", mix)
	}
}

// TestConcurrentWriters hammers one counter, one gauge, and one histogram
// from many goroutines; run under -race this is the detector target, and
// the final totals must be exact.
func TestConcurrentWriters(t *testing.T) {
	r := New()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h", 1, 100).Observe(float64(i % 150))
				if i%100 == 0 {
					_ = r.Snapshot() // snapshots race the writers safely
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	const total = workers * perWorker
	if s.Counter("c") != total {
		t.Errorf("counter = %d, want %d", s.Counter("c"), total)
	}
	if s.Gauge("g") != total {
		t.Errorf("gauge = %d, want %d", s.Gauge("g"), total)
	}
	h, _ := s.Hist("h")
	if h.Count != total {
		t.Errorf("hist count = %d, want %d", h.Count, total)
	}
	var bucketSum int64
	for _, c := range h.Counts {
		bucketSum += c
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
}

func TestTextRenderingDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := New()
		r.Counter("b.count").Add(2)
		r.Counter("a.count").Add(1)
		r.Gauge("z.gauge").Set(-4)
		r.Histogram("lat", 1, 5).Observe(0.5)
		r.Histogram("lat", 1, 5).Observe(3)
		r.Histogram("lat", 1, 5).Observe(99)
		return r.Snapshot()
	}
	got := build().Text()
	want := strings.Join([]string{
		"counter a.count 1",
		"counter b.count 2",
		"gauge   z.gauge -4",
		"hist    lat count=3 sum=102.5 le1:1 le5:1 leINF:1",
		"",
	}, "\n")
	if got != want {
		t.Errorf("Text:\n%s\nwant:\n%s", got, want)
	}
	if again := build().Text(); again != got {
		t.Error("Text not deterministic across identical registries")
	}
	js1, _ := build().JSON()
	js2, _ := build().JSON()
	if string(js1) != string(js2) {
		t.Error("JSON not deterministic")
	}
}

func TestDefaultAndOr(t *testing.T) {
	if Or(nil) != Default() {
		t.Error("Or(nil) != Default()")
	}
	r := New()
	if Or(r) != r {
		t.Error("Or(r) != r")
	}
}

// TestRegistryLoadResumesStreams: Load is the restore half of
// checkpoint/resume — a snapshot loaded into a fresh registry followed by
// the remaining observations must render identically to one uninterrupted
// registry.
func TestRegistryLoadResumesStreams(t *testing.T) {
	firstHalf := func(r *Registry) {
		r.Counter("c.events").Add(7)
		r.Gauge("g.depth").Set(12)
		h := r.Histogram("h.lat", 1, 5, 10)
		h.Observe(0.5)
		h.Observe(7)
	}
	secondHalf := func(r *Registry) {
		r.Counter("c.events").Add(3)
		r.Gauge("g.depth").Set(2)
		h := r.Histogram("h.lat", 1, 5, 10)
		h.Observe(3)
		h.Observe(99)
	}

	full := New()
	firstHalf(full)
	secondHalf(full)

	interrupted := New()
	firstHalf(interrupted)
	cp := interrupted.Snapshot()

	resumed := New()
	resumed.Load(cp)
	secondHalf(resumed)

	if got, want := resumed.Snapshot().Text(), full.Snapshot().Text(); got != want {
		t.Fatalf("resumed registry diverges:\n--- resumed\n%s--- full\n%s", got, want)
	}
}

// TestRegistryLoadDegradedHistogram: a count/sum-only histogram snapshot
// (mismatched-merge artifact) still restores count and sum.
func TestRegistryLoadDegradedHistogram(t *testing.T) {
	r := New()
	r.Load(Snapshot{Hists: map[string]HistSnapshot{"h.only": {Count: 4, Sum: 20}}})
	h, ok := r.Snapshot().Hist("h.only")
	if !ok || h.Count != 4 || h.Sum != 20 {
		t.Fatalf("degraded load: %+v ok=%v", h, ok)
	}
}

// TestSetClock: span timing follows an injected clock — including spans on
// histograms created before SetClock — and nil restores wall time.
func TestSetClock(t *testing.T) {
	r := New()
	pre := r.Histogram("pre.ms") // created before the clock swap

	now := time.Unix(1000, 0)
	r.SetClock(func() time.Time { return now })

	s := r.StartSpan("op")
	now = now.Add(250 * time.Millisecond)
	if d := s.End(); d != 250*time.Millisecond {
		t.Fatalf("injected clock span = %v, want 250ms", d)
	}

	ps := pre.Start()
	now = now.Add(40 * time.Millisecond)
	if d := ps.End(); d != 40*time.Millisecond {
		t.Fatalf("pre-existing histogram span = %v, want 40ms", d)
	}

	snap := r.Snapshot()
	if h, ok := snap.Hist("op.ms"); !ok || h.Count != 1 || h.Sum != 250 {
		t.Fatalf("op.ms snapshot: %+v ok=%v", h, ok)
	}

	// Two same-script registries render identically under injected clocks.
	script := func() string {
		reg := New()
		at := time.Unix(0, 0)
		reg.SetClock(func() time.Time { return at })
		sp := reg.StartSpan("det")
		at = at.Add(7 * time.Millisecond)
		sp.End()
		return reg.Snapshot().Text()
	}
	if a, b := script(), script(); a != b {
		t.Fatalf("injected-clock spans not deterministic:\n%s\nvs\n%s", a, b)
	}

	// Restore wall clock: spans stop following the fake.
	r.SetClock(nil)
	ws := r.StartSpan("wall")
	if d := ws.End(); d < 0 || d > 10*time.Second {
		t.Fatalf("wall-clock span looks wrong: %v", d)
	}
}
