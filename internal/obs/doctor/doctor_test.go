package doctor

import (
	"encoding/json"
	"strings"
	"testing"

	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
)

// metricsWith builds a metric snapshot from literal counter/gauge maps.
func metricsWith(counters map[string]int64, gauges map[string]int64) obs.Snapshot {
	if counters == nil {
		counters = map[string]int64{}
	}
	if gauges == nil {
		gauges = map[string]int64{}
	}
	return obs.Snapshot{Counters: counters, Gauges: gauges}
}

func TestHealthyReport(t *testing.T) {
	rep := Diagnose(Input{Metrics: metricsWith(nil, nil)})
	if !rep.Healthy {
		t.Fatalf("empty input should be healthy, got %d findings", len(rep.Findings))
	}
	if got := rep.Text(); got != "crawl doctor: healthy\n" {
		t.Errorf("Text() = %q", got)
	}
}

// TestRulesFire tables one triggering input per rule family and checks
// the expected rule lands at the expected severity.
func TestRulesFire(t *testing.T) {
	cases := []struct {
		name     string
		counters map[string]int64
		gauges   map[string]int64
		wantRule string
		wantSev  Severity
	}{
		{
			name: "harvest-collapse",
			counters: map[string]int64{
				"crawler.classify.relevant":   5,
				"crawler.classify.irrelevant": 95,
			},
			wantRule: "harvest-collapse", wantSev: Critical,
		},
		{
			name:     "breaker-storm-warning-when-all-closed",
			counters: map[string]int64{"crawler.breaker.opened": 3},
			wantRule: "breaker-storm", wantSev: Warning,
		},
		{
			name:     "breaker-storm-critical-when-open-now",
			counters: map[string]int64{"crawler.breaker.opened": 3},
			gauges:   map[string]int64{"crawler.breaker.open.hosts": 2},
			wantRule: "breaker-storm", wantSev: Critical,
		},
		{
			name: "dead-hosts",
			counters: map[string]int64{
				"crawler.fetch.hostdown": 30,
				"crawler.fetch.errors":   60,
			},
			wantRule: "dead-hosts", wantSev: Warning,
		},
		{
			name: "spider-trap",
			counters: map[string]int64{
				"crawler.frontier.trap":    400,
				"crawler.links.discovered": 1000,
			},
			wantRule: "spider-trap", wantSev: Warning,
		},
		{
			name: "retry-churn",
			counters: map[string]int64{
				"crawler.retry.scheduled": 80,
				"crawler.fetch.ok":        100,
			},
			wantRule: "retry-churn", wantSev: Warning,
		},
		{
			name: "rate-limit-pressure",
			counters: map[string]int64{
				"crawler.fetch.ratelimited": 50,
				"crawler.fetch.ok":          100,
			},
			wantRule: "rate-limit-pressure", wantSev: Note,
		},
		{
			name: "filter-dominance",
			counters: map[string]int64{
				"crawler.filter.mime":   10,
				"crawler.filter.lang":   45,
				"crawler.filter.length": 20,
				"crawler.fetch.ok":      100,
			},
			wantRule: "filter-dominance", wantSev: Warning,
		},
		{
			name: "quarantine-heavy-op",
			counters: map[string]int64{
				"dataflow.op.03.ner.gene.quarantined": 40,
				"dataflow.op.03.ner.gene.in":          100,
			},
			wantRule: "quarantine-heavy-op", wantSev: Critical,
		},
		{
			name:     "op-panics",
			counters: map[string]int64{"dataflow.op.02.postag.panics": 2},
			wantRule: "op-panics", wantSev: Critical,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Diagnose(Input{Metrics: metricsWith(tc.counters, tc.gauges)})
			if rep.Healthy {
				t.Fatalf("expected %s finding, report healthy", tc.wantRule)
			}
			var found *Finding
			for i := range rep.Findings {
				if rep.Findings[i].Rule == tc.wantRule {
					found = &rep.Findings[i]
					break
				}
			}
			if found == nil {
				t.Fatalf("rule %s did not fire; findings: %+v", tc.wantRule, rep.Findings)
			}
			if found.Severity != tc.wantSev {
				t.Errorf("severity = %v, want %v", found.Severity, tc.wantSev)
			}
			if found.Score <= 0 || found.Score > 1 {
				t.Errorf("score %v outside (0,1]", found.Score)
			}
			if len(found.Evidence) == 0 {
				t.Errorf("finding has no evidence")
			}
		})
	}
}

// TestRulesStayQuiet tables near-miss inputs that must NOT fire.
func TestRulesStayQuiet(t *testing.T) {
	cases := []struct {
		name     string
		counters map[string]int64
		rule     string
	}{
		{
			// Healthy 60% harvest rate.
			name: "harvest-ok",
			counters: map[string]int64{
				"crawler.classify.relevant":   60,
				"crawler.classify.irrelevant": 40,
			},
			rule: "harvest-collapse",
		},
		{
			// Too few classified pages to judge.
			name: "harvest-low-volume",
			counters: map[string]int64{
				"crawler.classify.relevant":   1,
				"crawler.classify.irrelevant": 9,
			},
			rule: "harvest-collapse",
		},
		{
			// Retries well under half the success count.
			name: "retry-low",
			counters: map[string]int64{
				"crawler.retry.scheduled": 10,
				"crawler.fetch.ok":        100,
			},
			rule: "retry-churn",
		},
		{
			// Quarantine rate under the 25% threshold.
			name: "quarantine-light",
			counters: map[string]int64{
				"dataflow.op.03.ner.gene.quarantined": 10,
				"dataflow.op.03.ner.gene.in":          100,
			},
			rule: "quarantine-heavy-op",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Diagnose(Input{Metrics: metricsWith(tc.counters, nil)})
			for _, f := range rep.Findings {
				if f.Rule == tc.rule {
					t.Errorf("rule %s fired on near-miss input: %+v", tc.rule, f)
				}
			}
		})
	}
}

// TestLogPillarRules exercises the rules that need the log pillar, and
// that they degrade to silence without it.
func TestLogPillarRules(t *testing.T) {
	sink := evlog.NewSink(evlog.DefaultConfig(7))
	frontier := sink.Logger("crawler.frontier")
	frontier.Warn("frontier.exhausted", 10)
	boiler := sink.Logger("crawler.fetch")
	boiler.Error("fetch.corrupt", 11)
	logs := sink.Snapshot()

	rep := Diagnose(Input{Metrics: metricsWith(nil, nil), Logs: logs})
	var rules []string
	for _, f := range rep.Findings {
		rules = append(rules, f.Rule)
	}
	if !strings.Contains(strings.Join(rules, " "), "frontier-exhausted") {
		t.Errorf("frontier-exhausted did not fire; rules: %v", rules)
	}
	if !strings.Contains(strings.Join(rules, " "), "error-burst") {
		t.Errorf("error-burst did not fire; rules: %v", rules)
	}

	// Without the log pillar the same metrics input is healthy.
	rep = Diagnose(Input{Metrics: metricsWith(nil, nil)})
	if !rep.Healthy {
		t.Errorf("nil-logs input should degrade to healthy, got %+v", rep.Findings)
	}
}

// TestRankingAndFilter checks severity-major ordering, the score
// quantization, and Filter's severity/rule narrowing.
func TestRankingAndFilter(t *testing.T) {
	counters := map[string]int64{
		// Critical: quarantine-heavy op at 90%.
		"dataflow.op.01.a.quarantined": 90,
		"dataflow.op.01.a.in":          100,
		// Warning: dead hosts at 1/3 of errors.
		"crawler.fetch.hostdown": 10,
		"crawler.fetch.errors":   30,
		// Note: rate-limit pressure.
		"crawler.fetch.ratelimited": 50,
		"crawler.fetch.ok":          50,
	}
	rep := Diagnose(Input{Metrics: metricsWith(counters, nil)})
	if len(rep.Findings) != 3 {
		t.Fatalf("want 3 findings, got %+v", rep.Findings)
	}
	wantOrder := []string{"quarantine-heavy-op", "dead-hosts", "rate-limit-pressure"}
	for i, want := range wantOrder {
		if rep.Findings[i].Rule != want {
			t.Errorf("findings[%d] = %s, want %s", i, rep.Findings[i].Rule, want)
		}
	}
	// 10/30 quantizes to 0.333 — three decimals exactly.
	if got := rep.Findings[1].Score; got != 0.333 {
		t.Errorf("dead-hosts score = %v, want 0.333", got)
	}

	warnUp := rep.Filter(Warning, "")
	if len(warnUp.Findings) != 2 {
		t.Errorf("Filter(Warning) kept %d findings, want 2", len(warnUp.Findings))
	}
	only := rep.Filter(Note, "dead")
	if len(only.Findings) != 1 || only.Findings[0].Rule != "dead-hosts" {
		t.Errorf("Filter(Note, dead) = %+v", only.Findings)
	}
	none := rep.Filter(Critical, "dead")
	if !none.Healthy {
		t.Errorf("empty filtered report should be healthy")
	}
}

// TestDeterministicRenderings pins that Text and JSON are pure functions
// of the input.
func TestDeterministicRenderings(t *testing.T) {
	counters := map[string]int64{
		"crawler.breaker.opened":  5,
		"crawler.fetch.hostdown":  8,
		"crawler.fetch.errors":    20,
		"crawler.retry.scheduled": 60,
		"crawler.fetch.ok":        100,
	}
	a := Diagnose(Input{Metrics: metricsWith(counters, nil)})
	b := Diagnose(Input{Metrics: metricsWith(counters, nil)})
	if a.Text() != b.Text() {
		t.Errorf("Text() not deterministic:\n%s\nvs\n%s", a.Text(), b.Text())
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Errorf("JSON() not deterministic")
	}
	var parsed Report
	if err := json.Unmarshal(aj, &parsed); err != nil {
		t.Fatalf("JSON round-trip: %v", err)
	}
	if len(parsed.Findings) != len(a.Findings) {
		t.Errorf("round-trip lost findings")
	}
}

func TestParseSeverity(t *testing.T) {
	for in, want := range map[string]Severity{
		"note": Note, "warning": Warning, "critical": Critical,
	} {
		got, ok := ParseSeverity(in)
		if !ok || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", in, got, ok)
		}
	}
	if _, ok := ParseSeverity("bogus"); ok {
		t.Errorf("ParseSeverity accepted bogus")
	}
}
