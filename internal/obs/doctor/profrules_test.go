package doctor

import (
	"bytes"
	"sort"
	"testing"

	"webtextie/internal/obs/prof"
)

// profWith builds a profile snapshot from per-scope data, keeping the
// name-sorted invariant the real Snapshot() maintains.
func profWith(scopes map[string]prof.ScopeData) *prof.Snapshot {
	s := &prof.Snapshot{}
	for name, sd := range scopes {
		sd.Name = name
		cp := sd
		s.Scopes = append(s.Scopes, &cp)
	}
	sort.Slice(s.Scopes, func(i, j int) bool { return s.Scopes[i].Name < s.Scopes[j].Name })
	return s
}

// shardProfiles builds one snapshot per shard holding a single stage
// scope with the given self virtual milliseconds.
func shardProfiles(stage string, ms []int64) []*prof.Snapshot {
	out := make([]*prof.Snapshot, len(ms))
	for i, v := range ms {
		out[i] = profWith(map[string]prof.ScopeData{
			stage: {Calls: v / 10, VirtualMs: v},
		})
	}
	return out
}

// TestStageCostSkewFires checks both severity bands over synthetic
// per-shard fetch costs.
func TestStageCostSkewFires(t *testing.T) {
	cases := []struct {
		name    string
		ms      []int64
		wantSev Severity
	}{
		// mean 13000, hot shard 40000: 3.1x — critical.
		{"critical", []int64{40_000, 4_000, 4_000, 4_000}, Critical},
		// mean 5250, hot shard 9000: 1.7x — warning.
		{"warning", []int64{9_000, 4_000, 4_000, 4_000}, Warning},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Diagnose(Input{
				Metrics:       metricsWith(nil, nil),
				ShardProfiles: shardProfiles("crawl.cycle.fetch", tc.ms),
			})
			var found *Finding
			for i := range rep.Findings {
				if rep.Findings[i].Rule == "stage-cost-skew" {
					found = &rep.Findings[i]
					break
				}
			}
			if found == nil {
				t.Fatalf("stage-cost-skew did not fire; findings: %+v", rep.Findings)
			}
			if found.Severity != tc.wantSev {
				t.Errorf("severity = %v, want %v", found.Severity, tc.wantSev)
			}
			if found.Score <= 0 || found.Score > 1 {
				t.Errorf("score %v outside (0,1]", found.Score)
			}
			if len(found.Evidence) == 0 {
				t.Errorf("finding has no evidence")
			}
		})
	}
}

// TestStageCostSkewStaysQuiet tables the non-firing shapes: balance,
// too little cost to judge, and a single shard (nothing to skew).
func TestStageCostSkewStaysQuiet(t *testing.T) {
	cases := []struct {
		name   string
		shards []*prof.Snapshot
	}{
		{"balanced", shardProfiles("crawl.cycle.fetch", []int64{12_000, 11_000, 13_000, 12_000})},
		{"below-min-ms", shardProfiles("crawl.cycle.fetch", []int64{2_000, 100, 100, 100})},
		{"single-shard", shardProfiles("crawl.cycle.fetch", []int64{50_000})},
		{"no-profiles", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Diagnose(Input{Metrics: metricsWith(nil, nil), ShardProfiles: tc.shards})
			for _, f := range rep.Findings {
				if f.Rule == "stage-cost-skew" {
					t.Errorf("stage-cost-skew fired: %+v", f)
				}
			}
		})
	}
}

// TestCheckpointOverheadDominance exercises the wall-lane rule across
// its bands: quiet, warning, critical, and the minimum-bracket floor.
func TestCheckpointOverheadDominance(t *testing.T) {
	mk := func(cpMs, cycMs, brackets int64) *prof.Snapshot {
		return profWith(map[string]prof.ScopeData{
			"crawl.checkpoint": {Brackets: brackets, WallNs: cpMs * 1e6},
			"crawl.cycle":      {Brackets: 100, WallNs: cycMs * 1e6},
		})
	}
	cases := []struct {
		name    string
		prof    *prof.Snapshot
		wantSev Severity
		fire    bool
	}{
		// 300 / (300+600) = 33% — critical.
		{"critical", mk(300, 600, 10), Critical, true},
		// 150 / (150+850) = 15% — warning.
		{"warning", mk(150, 850, 10), Warning, true},
		// 50 / (50+950) = 5% — below the floor.
		{"quiet", mk(50, 950, 10), Note, false},
		// Dominant fraction but only 2 checkpoints: too few to judge.
		{"too-few-brackets", mk(300, 600, 2), Note, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Diagnose(Input{Metrics: metricsWith(nil, nil), Profile: tc.prof})
			var found *Finding
			for i := range rep.Findings {
				if rep.Findings[i].Rule == "checkpoint-overhead-dominance" {
					found = &rep.Findings[i]
					break
				}
			}
			if found == nil {
				if tc.fire {
					t.Fatalf("rule did not fire; findings: %+v", rep.Findings)
				}
				return
			}
			if !tc.fire {
				t.Fatalf("rule fired on quiet input: %+v", found)
			}
			if found.Severity != tc.wantSev {
				t.Errorf("severity = %v, want %v", found.Severity, tc.wantSev)
			}
		})
	}
	// Without the pillar, neither profile rule can fire.
	rep := Diagnose(Input{Metrics: metricsWith(nil, nil)})
	for _, f := range rep.Findings {
		switch f.Rule {
		case "stage-cost-skew", "checkpoint-overhead-dominance":
			t.Errorf("profile rule %s fired without the profile pillar", f.Rule)
		}
	}
}

// TestProfRulesDeterministic renders the same profile diagnosis twice
// and demands identical bytes.
func TestProfRulesDeterministic(t *testing.T) {
	in := Input{
		Metrics: metricsWith(nil, nil),
		Profile: profWith(map[string]prof.ScopeData{
			"crawl.checkpoint": {Brackets: 8, WallNs: 400e6},
			"crawl.cycle":      {Brackets: 64, WallNs: 700e6},
		}),
		ShardProfiles: shardProfiles("crawl.cycle.classify", []int64{33_000, 5_000, 5_000, 5_000}),
	}
	a, b := Diagnose(in), Diagnose(in)
	if a.Text() != b.Text() {
		t.Errorf("diagnosis text not deterministic:\n%s\nvs\n%s", a.Text(), b.Text())
	}
	aj, _ := a.JSON()
	bj, _ := b.JSON()
	if !bytes.Equal(aj, bj) {
		t.Errorf("diagnosis JSON not deterministic")
	}
}
