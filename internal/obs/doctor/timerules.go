package doctor

import (
	"fmt"
	"strconv"

	"webtextie/internal/obs/series"
)

// Time-aware rules: the fourth pillar (internal/obs/series) gives the
// doctor a virtual-time axis, so it can diagnose *trends* the final
// counters hide. A run that ends at a healthy 25% harvest rate may have
// spent its first half at 40% and its last at 5% — the paper's central
// pitfall is exactly that decay, and a point-in-time snapshot cannot see
// it. All four rules degrade to silence without the series pillar and
// require a minimum sample count before judging.

// timeMinSamples is the fewest per-cycle samples a trend rule will judge;
// below it, windows are too short to separate trend from noise.
const timeMinSamples = 8

// fmtRate renders a per-second rate with fixed precision so summaries
// stay byte-stable.
func fmtRate(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64)
}

// harvestDecay fires when the harvest rate's late half is less than half
// its early half — the crawl started in dense territory and is digging
// into an increasingly irrelevant frontier. This is the temporal
// complement of harvestCollapse: it fires even when the cumulative rate
// still looks acceptable.
func harvestDecay(in Input) []Finding {
	rel := in.seriesPoints("crawler.classify.relevant")
	irr := in.seriesPoints("crawler.classify.irrelevant")
	n := len(rel)
	if len(irr) < n {
		n = len(irr)
	}
	if n < timeMinSamples {
		return nil
	}
	mid := n / 2
	earlyRel := rel[mid].V - rel[0].V
	earlyIrr := irr[mid].V - irr[0].V
	lateRel := rel[n-1].V - rel[mid].V
	lateIrr := irr[n-1].V - irr[mid].V
	earlyN, lateN := earlyRel+earlyIrr, lateRel+lateIrr
	// Each half must hold enough verdicts to judge, and the early half
	// must have been worth harvesting at all.
	if earlyN < 20 || lateN < 20 {
		return nil
	}
	early, late := earlyRel/earlyN, lateRel/lateN
	if early < 0.1 || late > 0.5*early {
		return nil
	}
	sev := Warning
	if late <= 0.25*early {
		sev = Critical
	}
	return []Finding{{
		Rule:     "harvest-decay",
		Severity: sev,
		Score:    1 - late/early,
		Summary: fmt.Sprintf("harvest rate decayed from %s (early half) to %s (late half)",
			pct(int64(earlyRel), int64(earlyN)), pct(int64(lateRel), int64(lateN))),
		Evidence: []string{
			fmt.Sprintf("early half: %d relevant of %d classified; late half: %d of %d",
				int64(earlyRel), int64(earlyN), int64(lateRel), int64(lateN)),
			fmt.Sprintf("series crawler.classify.{relevant,irrelevant}: %d samples over %dms of virtual time (see /timeseries?name=crawler.classify)",
				n, rel[n-1].AtMs-rel[0].AtMs),
		},
	}}
}

// breakerOscillation fires when breaker openings are spread across many
// sampling windows: hosts are flapping — opening, recovering, reopening —
// rather than failing once. breakerStorm counts openings; this rule reads
// their shape in time.
func breakerOscillation(in Input) []Finding {
	pts := in.seriesPoints("crawler.breaker.opened")
	if len(pts) < timeMinSamples {
		return nil
	}
	windows := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].V > pts[i-1].V {
			windows++
		}
	}
	if windows < 3 {
		return nil
	}
	total := int64(pts[len(pts)-1].V - pts[0].V)
	return []Finding{{
		Rule:     "breaker-oscillation",
		Severity: Warning,
		Score:    ratio(int64(windows), int64(windows)+5),
		Summary: fmt.Sprintf("circuit breakers opened across %d distinct sampling windows (%d openings): hosts are flapping, not failing once",
			windows, total),
		Evidence: []string{
			fmt.Sprintf("series crawler.breaker.opened: %d samples, %d windows with fresh openings (see /timeseries?name=crawler.breaker)",
				len(pts), windows),
		},
	}}
}

// frontierStarvationTrend fires when the pending frontier is shrinking
// fast enough to empty within roughly twice the observed window — the
// crawl is about to end on starvation, not on its page budget. The
// frontierExhausted rule reports that it happened; this one sees it
// coming.
func frontierStarvationTrend(in Input) []Finding {
	pts := in.seriesPoints("crawler.frontier.pending")
	if len(pts) < timeMinSamples {
		return nil
	}
	w := pts[len(pts)-timeMinSamples:]
	last := w[len(w)-1]
	slope := series.Slope(w)
	if last.V <= 0 || slope >= 0 {
		return nil
	}
	spanSec := float64(w[len(w)-1].AtMs-w[0].AtMs) / 1000
	if spanSec <= 0 {
		return nil
	}
	etaSec := last.V / -slope
	if etaSec > 2*spanSec {
		return nil
	}
	return []Finding{{
		Rule:     "frontier-starvation-trend",
		Severity: Warning,
		Score:    1 / (1 + etaSec/spanSec),
		Summary: fmt.Sprintf("frontier pending is draining at %s URLs/s; %d left — projected empty in ~%ss of virtual time",
			fmtRate(-slope), int64(last.V), fmtRate(etaSec)),
		Evidence: []string{
			fmt.Sprintf("series crawler.frontier.pending: slope %s/s over the last %d samples (%ss window)",
				fmtRate(slope), timeMinSamples, fmtRate(spanSec)),
		},
	}}
}

// throughputCliff fires when fetch throughput fell off a cliff: the
// run's final quarter delivers under 30% of its peak quarter's pages per
// second. Breakers, rate limits, or retry churn are eating the crawl
// from the inside while the cumulative totals still grow.
func throughputCliff(in Input) []Finding {
	pts := in.seriesPoints("crawler.fetch.ok")
	if len(pts) < timeMinSamples {
		return nil
	}
	q := len(pts) / 4
	var rates [4]float64
	for k := 0; k < 4; k++ {
		from := pts[k*q]
		to := pts[len(pts)-1]
		if k < 3 {
			to = pts[(k+1)*q]
		}
		if dt := to.AtMs - from.AtMs; dt > 0 {
			rates[k] = (to.V - from.V) * 1000 / float64(dt)
		}
	}
	peak, peakIdx := rates[0], 0
	for k := 1; k < 4; k++ {
		if rates[k] > peak {
			peak, peakIdx = rates[k], k
		}
	}
	if peak <= 0 || peakIdx == 3 || rates[3] >= 0.3*peak {
		return nil
	}
	return []Finding{{
		Rule:     "throughput-cliff",
		Severity: Warning,
		Score:    1 - rates[3]/peak,
		Summary: fmt.Sprintf("fetch throughput fell from %s pages/s (quarter %d) to %s in the final quarter",
			fmtRate(peak), peakIdx+1, fmtRate(rates[3])),
		Evidence: []string{
			fmt.Sprintf("series crawler.fetch.ok quarter rates: %s %s %s %s pages/s (see /timeseries?name=crawler.fetch)",
				fmtRate(rates[0]), fmtRate(rates[1]), fmtRate(rates[2]), fmtRate(rates[3])),
		},
	}}
}
