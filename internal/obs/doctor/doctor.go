// Package doctor is the cross-pillar diagnosis engine: a deterministic
// rule set that fuses a metrics snapshot (PR 1), a trace summary (PR 4),
// and an event log (PR 5) into one ranked answer to "what is wrong with
// this crawl?". The paper's authors reconstructed their pitfalls by hand
// from aggregate numbers after the fact (PAPER.md §5-6); doctor encodes
// those reconstructions as rules so an operator — or a test — gets the
// diagnosis on demand.
//
// The engine is pure: Diagnose reads three plain-value snapshots and
// returns a Report whose findings are ranked by (severity, score, rule
// name) with all numbers derived deterministically, so the same run
// state always renders the same report bytes. Rules degrade gracefully —
// each consumes whichever pillars are present and simply finds less with
// less evidence.
package doctor

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"webtextie/internal/obs"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
)

// Severity grades a finding. The zero value is Note.
type Severity int8

// Severities, in increasing order of alarm.
const (
	Note Severity = iota
	Warning
	Critical
)

var severityNames = [...]string{"note", "warning", "critical"}

// String returns the lower-case severity name.
func (s Severity) String() string {
	if s < Note || s > Critical {
		return fmt.Sprintf("severity(%d)", int8(s))
	}
	return severityNames[s]
}

// ParseSeverity maps a lower-case severity name back to its Severity.
func ParseSeverity(v string) (Severity, bool) {
	for i, n := range severityNames {
		if n == v {
			return Severity(i), true
		}
	}
	return Note, false
}

// MarshalJSON renders the severity as its quoted name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON parses a quoted severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("doctor: bad severity %s", data)
	}
	v, ok := ParseSeverity(string(data[1 : len(data)-1]))
	if !ok {
		return fmt.Errorf("doctor: unknown severity %s", data)
	}
	*s = v
	return nil
}

// Input is everything a rule may consult. Any pillar may be absent
// (zero-value metrics, nil traces/logs); rules consume what is there.
type Input struct {
	Metrics obs.Snapshot
	Traces  *trace.Snapshot
	Logs    *evlog.Snapshot
	Series  *series.Snapshot
	// Profile is the (possibly fleet-merged) cost profile — the fifth
	// pillar (internal/obs/prof).
	Profile *prof.Snapshot
	// ShardProfiles holds the per-shard cost profiles of a fleet run, in
	// shard order; nil for single-crawler runs. Cross-shard rules (stage
	// cost skew) need the unmerged view.
	ShardProfiles []*prof.Snapshot
}

// seriesPoints returns one series' raw sample stream, or nil when the
// time-series pillar (or that series) is absent.
func (in Input) seriesPoints(name string) []series.Point {
	if in.Series == nil {
		return nil
	}
	sd := in.Series.Get(name)
	if sd == nil {
		return nil
	}
	return sd.Points
}

// traceErrs returns the trace error-class tally, or an empty map when
// the trace pillar is absent.
func (in Input) traceErrs() map[string]int {
	if in.Traces == nil {
		return map[string]int{}
	}
	return in.Traces.ErrClassCounts()
}

// logTotal returns the emitted count for one (level, component), or 0
// when the log pillar is absent.
func (in Input) logTotal(lv evlog.Level, component string) uint64 {
	if in.Logs == nil {
		return 0
	}
	return in.Logs.ComponentTotal(lv, component)
}

// profScope returns one scope's data from the merged profile, or nil
// when the profile pillar (or that scope) is absent.
func (in Input) profScope(name string) *prof.ScopeData {
	if in.Profile == nil {
		return nil
	}
	return in.Profile.Get(name)
}

// Finding is one diagnosed condition. Score in [0,1] grades magnitude
// within the severity band (a 90% quarantine rate outranks a 30% one);
// Evidence lists the cross-pillar observations the rule fused, one per
// line, already deterministic.
type Finding struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Score    float64  `json:"score"`
	Summary  string   `json:"summary"`
	Evidence []string `json:"evidence,omitempty"`
}

// Report is a ranked diagnosis: findings sorted by (severity desc,
// score desc, rule asc, summary asc).
type Report struct {
	Healthy  bool      `json:"healthy"`
	Findings []Finding `json:"findings"`
}

// Diagnose runs every rule over the input and ranks the findings.
func Diagnose(in Input) *Report {
	r := &Report{Findings: []Finding{}}
	for _, rule := range rules {
		r.Findings = append(r.Findings, rule(in)...)
	}
	// Scores grade magnitude, not precision: quantize to 3 decimals so
	// text and JSON renderings stay readable and stable.
	for i := range r.Findings {
		r.Findings[i].Score = math.Round(r.Findings[i].Score*1000) / 1000
	}
	sort.Slice(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Summary < b.Summary
	})
	r.Healthy = len(r.Findings) == 0
	return r
}

// Filter returns a report holding only findings at or above minSev whose
// rule name contains the substring (empty = any).
func (r *Report) Filter(minSev Severity, rule string) *Report {
	out := &Report{Findings: []Finding{}}
	for _, f := range r.Findings {
		if f.Severity < minSev {
			continue
		}
		if rule != "" && !strings.Contains(f.Rule, rule) {
			continue
		}
		out.Findings = append(out.Findings, f)
	}
	out.Healthy = len(out.Findings) == 0
	return out
}

// Text renders the report deterministically:
//
//	crawl doctor: 2 findings
//	critical quarantine-heavy-op score=0.4 operator ner.gene quarantines 40% ...
//	    evidence: dataflow.op.03.ner.gene.quarantined=40 in=100
//	healthy reports render "crawl doctor: healthy".
func (r *Report) Text() string {
	var b strings.Builder
	if r.Healthy {
		b.WriteString("crawl doctor: healthy\n")
		return b.String()
	}
	word := "findings"
	if len(r.Findings) == 1 {
		word = "finding"
	}
	fmt.Fprintf(&b, "crawl doctor: %d %s\n", len(r.Findings), word)
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%-8s %s score=%s %s\n",
			f.Severity, f.Rule, strconv.FormatFloat(f.Score, 'g', -1, 64), f.Summary)
		for _, e := range f.Evidence {
			fmt.Fprintf(&b, "    evidence: %s\n", e)
		}
	}
	return b.String()
}

// JSON renders the report as deterministic indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// pct renders a ratio as an integer percentage string — coarse on
// purpose, so summaries stay stable and readable.
func pct(num, den int64) string {
	if den <= 0 {
		return "0%"
	}
	return strconv.FormatInt(num*100/den, 10) + "%"
}

// ratio returns num/den clamped to [0,1] (0 when den is 0).
func ratio(num, den int64) float64 {
	if den <= 0 || num <= 0 {
		return 0
	}
	r := float64(num) / float64(den)
	if r > 1 {
		return 1
	}
	return r
}
