package doctor

import (
	"fmt"
	"strconv"
)

// Profile-aware rules: the fifth pillar (internal/obs/prof) tells the
// doctor *where the budget went*, not just what happened. The two rules
// here diagnose cost pathologies the counter pillars cannot see — a
// fleet whose stage costs are lopsided across shards, and a crawl whose
// real time is eaten by checkpointing rather than crawling. Both degrade
// to silence without the profile pillar.

// profMinStageMs is the fewest fleet-wide virtual milliseconds a stage
// must have accumulated before the skew rule judges it; below that,
// skew is noise from a handful of fetches.
const profMinStageMs = 10_000

// profMinCheckpointBrackets is the fewest checkpoint brackets the
// overhead rule needs; one or two checkpoints say nothing about a
// steady-state overhead.
const profMinCheckpointBrackets = 3

// profStages are the crawl-cycle stages the skew rule compares across
// shards. Frontier generation and checkpointing are wall-lane-only
// scopes, so only the virtually-costed stages appear here.
var profStages = [...]string{
	"crawl.cycle.fetch",
	"crawl.cycle.filter",
	"crawl.cycle.classify",
}

// fmtX renders a skew multiplier with one decimal so summaries stay
// byte-stable.
func fmtX(v float64) string {
	return strconv.FormatFloat(v, 'f', 1, 64) + "x"
}

// stageCostSkew fires when one shard spends far more virtual time in a
// crawl stage than the fleet average — the host-hash partition is
// unbalanced (one shard owns the slow or link-dense hosts), so the
// fleet's makespan is pinned to its most loaded member. Stats.VirtualMs
// already reports the makespan; this rule names the stage and shard
// responsible for it.
func stageCostSkew(in Input) []Finding {
	shards := in.ShardProfiles
	if len(shards) < 2 {
		return nil
	}
	var out []Finding
	for _, stage := range profStages {
		var total int64
		var max int64
		maxShard := -1
		for i, s := range shards {
			var ms int64
			if s != nil {
				if sd := s.Get(stage); sd != nil {
					ms = sd.VirtualMs
				}
			}
			total += ms
			if ms > max {
				max, maxShard = ms, i
			}
		}
		if total < profMinStageMs || maxShard < 0 {
			continue
		}
		mean := float64(total) / float64(len(shards))
		skew := float64(max) / mean
		if skew < 1.5 {
			continue
		}
		sev := Warning
		if skew >= 2.5 {
			sev = Critical
		}
		// Score: how much of a perfectly balanced fleet's headroom the
		// hot shard consumed, clamped into [0,1] by construction
		// (skew ranges over [1, S]).
		score := (skew - 1) / float64(len(shards)-1)
		if score > 1 {
			score = 1
		}
		perShard := make([]string, len(shards))
		for i, s := range shards {
			var ms int64
			if s != nil {
				if sd := s.Get(stage); sd != nil {
					ms = sd.VirtualMs
				}
			}
			perShard[i] = fmt.Sprintf("shard %d: %dms", i, ms)
		}
		out = append(out, Finding{
			Rule:     "stage-cost-skew",
			Severity: sev,
			Score:    score,
			Summary: fmt.Sprintf("shard %d spends %s the fleet-average virtual time in %s",
				maxShard, fmtX(skew), stage),
			Evidence: []string{
				fmt.Sprintf("%s self virtual ms per shard: %v (fleet total %dms)",
					stage, perShard, total),
				"an unbalanced host-hash partition pins the fleet makespan to its hottest shard (see /profile?format=folded)",
			},
		})
	}
	return out
}

// checkpointOverheadDominance fires when the wall-clock time spent
// writing checkpoints rivals the wall-clock time spent crawling — the
// durability knob (CheckpointEvery) is set so aggressively that the
// crawl does more saving than fetching. Virtual time cannot see this:
// checkpointing is free on the simulated clock, so only the profiler's
// wall lane exposes it.
func checkpointOverheadDominance(in Input) []Finding {
	cp := in.profScope("crawl.checkpoint")
	cyc := in.profScope("crawl.cycle")
	if cp == nil || cyc == nil || cp.Brackets < profMinCheckpointBrackets ||
		cyc.WallNs <= 0 || cp.WallNs <= 0 {
		return nil
	}
	frac := float64(cp.WallNs) / float64(cp.WallNs+cyc.WallNs)
	if frac < 0.10 {
		return nil
	}
	sev := Warning
	if frac >= 0.25 {
		sev = Critical
	}
	return []Finding{{
		Rule:     "checkpoint-overhead-dominance",
		Severity: sev,
		Score:    frac,
		Summary: fmt.Sprintf("checkpointing consumed %s of crawl wall-clock time over %d snapshots",
			pct(cp.WallNs, cp.WallNs+cyc.WallNs), cp.Brackets),
		Evidence: []string{
			fmt.Sprintf("wall lane: crawl.checkpoint=%dms over %d brackets vs crawl.cycle=%dms over %d brackets",
				cp.WallNs/1e6, cp.Brackets, cyc.WallNs/1e6, cyc.Brackets),
			"raise CheckpointEvery (or checkpoint on a coarser trigger) to reclaim the lost wall time (see /profile?format=wall)",
		},
	}}
}
