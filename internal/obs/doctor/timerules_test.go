package doctor

import (
	"fmt"
	"testing"

	"webtextie/internal/classify"
	"webtextie/internal/crawler"
	"webtextie/internal/obs/series"
	"webtextie/internal/rng"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

// seriesWith builds a series snapshot from cumulative sample values, one
// sample per second of virtual time.
func seriesWith(t *testing.T, streams map[string][]float64) *series.Snapshot {
	t.Helper()
	rec := series.New(series.DefaultConfig())
	for name, vals := range streams {
		for i, v := range vals {
			rec.Observe(name, int64(i)*1000, v)
		}
	}
	return rec.Snapshot()
}

// TestTimeRulesFire tables one triggering sample stream per time-aware
// rule and checks it lands at the expected severity.
func TestTimeRulesFire(t *testing.T) {
	cases := []struct {
		name     string
		streams  map[string][]float64
		wantRule string
		wantSev  Severity
	}{
		{
			// Early half harvests 45/130 = 35%, late half 5/120 = 4%:
			// under a quarter of the early rate, so critical.
			name: "harvest-decay-critical",
			streams: map[string][]float64{
				"crawler.classify.relevant":   {0, 10, 20, 30, 40, 45, 47, 48, 49, 50},
				"crawler.classify.irrelevant": {0, 15, 30, 45, 60, 85, 113, 142, 171, 200},
			},
			wantRule: "harvest-decay", wantSev: Critical,
		},
		{
			// Early 40/100 = 40%, late 15/100 = 15%: decayed past half
			// but not past a quarter — warning band.
			name: "harvest-decay-warning",
			streams: map[string][]float64{
				"crawler.classify.relevant":   {0, 10, 20, 30, 40, 40, 44, 48, 51, 55},
				"crawler.classify.irrelevant": {0, 15, 30, 45, 60, 60, 81, 102, 123, 145},
			},
			wantRule: "harvest-decay", wantSev: Warning,
		},
		{
			// Openings land in four distinct sampling windows.
			name: "breaker-oscillation",
			streams: map[string][]float64{
				"crawler.breaker.opened": {0, 1, 1, 2, 2, 3, 3, 4},
			},
			wantRule: "breaker-oscillation", wantSev: Warning,
		},
		{
			// Pending drains 10/s with 30 left: empty in 3s against a 7s
			// window — well inside the 2x horizon.
			name: "frontier-starvation-trend",
			streams: map[string][]float64{
				"crawler.frontier.pending": {100, 90, 80, 70, 60, 50, 40, 30},
			},
			wantRule: "frontier-starvation-trend", wantSev: Warning,
		},
		{
			// 20 pages/s in the first quarter, 1/s in the last.
			name: "throughput-cliff",
			streams: map[string][]float64{
				"crawler.fetch.ok": {0, 20, 40, 60, 80, 85, 90, 95, 100, 102, 104, 106, 108, 109, 110, 111},
			},
			wantRule: "throughput-cliff", wantSev: Warning,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Diagnose(Input{Metrics: metricsWith(nil, nil), Series: seriesWith(t, tc.streams)})
			var found *Finding
			for i := range rep.Findings {
				if rep.Findings[i].Rule == tc.wantRule {
					found = &rep.Findings[i]
					break
				}
			}
			if found == nil {
				t.Fatalf("rule %s did not fire; findings: %+v", tc.wantRule, rep.Findings)
			}
			if found.Severity != tc.wantSev {
				t.Errorf("severity = %v, want %v", found.Severity, tc.wantSev)
			}
			if found.Score <= 0 || found.Score > 1 {
				t.Errorf("score %v outside (0,1]", found.Score)
			}
			if len(found.Evidence) == 0 {
				t.Errorf("finding has no evidence")
			}
		})
	}
}

// TestTimeRulesStayQuiet tables near-miss streams that must NOT fire,
// plus the degradation contract: no series pillar, no time findings.
func TestTimeRulesStayQuiet(t *testing.T) {
	cases := []struct {
		name    string
		streams map[string][]float64
		rule    string
	}{
		{
			// Steady 30% harvest in both halves.
			name: "harvest-steady",
			streams: map[string][]float64{
				"crawler.classify.relevant":   {0, 6, 12, 18, 24, 30, 36, 42, 48, 54},
				"crawler.classify.irrelevant": {0, 14, 28, 42, 56, 70, 84, 98, 112, 126},
			},
			rule: "harvest-decay",
		},
		{
			// Too few samples to judge, however steep the decay.
			name: "harvest-short-run",
			streams: map[string][]float64{
				"crawler.classify.relevant":   {0, 40, 45},
				"crawler.classify.irrelevant": {0, 40, 200},
			},
			rule: "harvest-decay",
		},
		{
			// One burst of openings, then quiet: a storm, not oscillation.
			name: "breaker-single-incident",
			streams: map[string][]float64{
				"crawler.breaker.opened": {0, 5, 5, 5, 5, 5, 5, 5},
			},
			rule: "breaker-oscillation",
		},
		{
			// Frontier growing: no starvation however the run ends.
			name: "frontier-growing",
			streams: map[string][]float64{
				"crawler.frontier.pending": {30, 40, 50, 60, 70, 80, 90, 100},
			},
			rule: "frontier-starvation-trend",
		},
		{
			// Draining, but the horizon is far beyond 2x the window.
			name: "frontier-slow-drain",
			streams: map[string][]float64{
				"crawler.frontier.pending": {1000, 999, 998, 997, 996, 995, 994, 993},
			},
			rule: "frontier-starvation-trend",
		},
		{
			// Uniform throughput end to end.
			name: "throughput-flat",
			streams: map[string][]float64{
				"crawler.fetch.ok": {0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120, 130, 140, 150},
			},
			rule: "throughput-cliff",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Diagnose(Input{Metrics: metricsWith(nil, nil), Series: seriesWith(t, tc.streams)})
			for _, f := range rep.Findings {
				if f.Rule == tc.rule {
					t.Errorf("rule %s fired on near-miss stream: %+v", tc.rule, f)
				}
			}
		})
	}
	// Without the pillar, no time rule can fire at all.
	rep := Diagnose(Input{Metrics: metricsWith(map[string]int64{
		"crawler.classify.relevant":   5,
		"crawler.classify.irrelevant": 95,
		"crawler.breaker.opened":      9,
	}, nil)})
	for _, f := range rep.Findings {
		switch f.Rule {
		case "harvest-decay", "breaker-oscillation", "frontier-starvation-trend", "throughput-cliff":
			t.Errorf("time rule %s fired without the series pillar", f.Rule)
		}
	}
}

// timeFixtureCrawl runs a real sampled crawl over a synthetic web and
// returns its diagnosis. DepthDecay > 0 builds the paper's decaying web;
// 0 builds the uniform control. The crawl is seeded from every host's
// front page and spread thin across hosts (MaxPerHostPerCycle 2) so its
// cycles advance through page depth in synchronized waves — entering
// through the dense front band and digging into the sparse tail.
func timeFixtureCrawl(t *testing.T, depthDecay float64) *Report {
	t.Helper()
	lex := textgen.NewLexicon(rng.New(1), textgen.LexiconSizes{Genes: 500, Drugs: 150, Diseases: 150}, 0.75)
	gen := textgen.NewGenerator(2, lex, textgen.DefaultProfiles())
	wcfg := synthweb.DefaultConfig()
	wcfg.NumHosts = 80
	// A dense front band (55% relevant on biomedical hosts) so the decayed
	// tail contrasts sharply even through classifier noise.
	wcfg.OffTopicShareOnBiomed = 0.45
	wcfg.DepthDecay = depthDecay
	web := synthweb.New(wcfg, gen)

	clf := classify.New()
	r := rng.New(3)
	for i := 0; i < 300; i++ {
		clf.Learn(gen.Doc(r, textgen.Medline, fmt.Sprint("m", i)).Text, classify.Relevant)
		clf.Learn(gen.Doc(r, textgen.Irrelevant, fmt.Sprint("w", i)).Text, classify.Irrelevant)
	}
	var seedURLs []string
	for _, h := range web.Hosts {
		seedURLs = append(seedURLs, synthweb.PageURL(h.Name, 0))
	}

	ccfg := crawler.DefaultConfig()
	ccfg.MaxPages = 900
	ccfg.FetchListSize = 80
	ccfg.MaxPerHostPerCycle = 2
	ccfg.Tunnelling = 3
	res := crawler.New(ccfg, web, clf).
		WithSeries(series.New(series.DefaultConfig())).
		Run(seedURLs)
	if res.Series == nil {
		t.Fatal("fixture crawl produced no series")
	}
	return Diagnose(Input{Metrics: res.Metrics, Series: res.Series})
}

// TestHarvestDecayGolden is the ISSUE's acceptance fixture: the
// harvest-decay rule fires on a crawl of a depth-decaying web and stays
// silent on the uniform control, and both reports render identically
// across reruns.
func TestHarvestDecayGolden(t *testing.T) {
	decayed := timeFixtureCrawl(t, 0.4)
	var hit *Finding
	for i := range decayed.Findings {
		if decayed.Findings[i].Rule == "harvest-decay" {
			hit = &decayed.Findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("harvest-decay did not fire on the decaying web; report:\n%s", decayed.Text())
	}
	if hit.Severity < Warning {
		t.Errorf("harvest-decay severity = %v, want >= warning", hit.Severity)
	}

	uniform := timeFixtureCrawl(t, 0)
	for _, f := range uniform.Findings {
		if f.Rule == "harvest-decay" {
			t.Errorf("harvest-decay fired on the uniform control web:\n%s", uniform.Text())
		}
	}

	// Golden: rerunning either fixture reproduces the report bytes.
	if again := timeFixtureCrawl(t, 0.4); again.Text() != decayed.Text() {
		t.Error("decaying-web report not byte-stable across reruns")
	}
}
