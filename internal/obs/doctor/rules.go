package doctor

import (
	"fmt"
	"sort"
	"strings"

	"webtextie/internal/obs/evlog"
)

// rules is the engine's rule set. Each rule reads the input and returns
// zero or more findings; rules must be pure (no clocks, no randomness)
// and must produce deterministic summaries and evidence — every number
// they print comes from the snapshots.
//
// The rule themes are the paper's §5-6 pitfalls: harvest-rate collapse,
// hosts going dark mid-crawl, spider traps flooding the frontier,
// filters silently eating the corpus, and extraction operators
// quarantining whole slices of records.
var rules = []func(Input) []Finding{
	harvestCollapse,
	breakerStorm,
	deadHosts,
	spiderTrap,
	frontierExhausted,
	retryChurn,
	rateLimitPressure,
	filterDominance,
	quarantineHeavyOps,
	opPanics,
	shardCrashLoop,
	degradedCompletion,
	errorBurst,
	logShedding,
	// Time-aware rules (timerules.go) — need the series pillar.
	harvestDecay,
	breakerOscillation,
	frontierStarvationTrend,
	throughputCliff,
	// Profile-aware rules (profrules.go) — need the cost-profile pillar.
	stageCostSkew,
	checkpointOverheadDominance,
}

// harvestCollapse fires when the classifier rejects most of what the
// crawler fetches — the focused crawl is paying full fetch cost for an
// irrelevant frontier (the paper's decaying-harvest-rate story).
func harvestCollapse(in Input) []Finding {
	rel := in.Metrics.Counter("crawler.classify.relevant")
	irr := in.Metrics.Counter("crawler.classify.irrelevant")
	total := rel + irr
	if total < 20 || ratio(rel, total) >= 0.2 {
		return nil
	}
	f := Finding{
		Rule:     "harvest-collapse",
		Severity: Critical,
		Score:    1 - ratio(rel, total),
		Summary: fmt.Sprintf("harvest rate %s: %d of %d classified pages relevant",
			pct(rel, total), rel, total),
		Evidence: []string{
			fmt.Sprintf("crawler.classify.relevant=%d crawler.classify.irrelevant=%d", rel, irr),
		},
	}
	if n := in.logTotal(evlog.Debug, "crawler.classify"); n > 0 {
		f.Evidence = append(f.Evidence,
			fmt.Sprintf("event log holds %d classify verdicts (see /logs?component=crawler.classify)", n))
	}
	return []Finding{f}
}

// breakerStorm fires when circuit breakers opened during the run: hosts
// went dark and the crawler is routing around them.
func breakerStorm(in Input) []Finding {
	opened := in.Metrics.Counter("crawler.breaker.opened")
	if opened == 0 {
		return nil
	}
	openNow := in.Metrics.Gauge("crawler.breaker.open.hosts")
	sev := Warning
	if openNow > 0 {
		sev = Critical
	}
	f := Finding{
		Rule:     "breaker-storm",
		Severity: sev,
		Score:    ratio(opened, opened+10),
		Summary: fmt.Sprintf("circuit breakers opened %d times; %d hosts open now",
			opened, openNow),
		Evidence: []string{
			fmt.Sprintf("crawler.breaker.opened=%d crawler.breaker.deferred=%d crawler.breaker.open.hosts=%d",
				opened, in.Metrics.Counter("crawler.breaker.deferred"), openNow),
		},
	}
	if n := in.traceErrs()["breaker_open"]; n > 0 {
		f.Evidence = append(f.Evidence,
			fmt.Sprintf("%d pinned traces carry breaker_open lineage (see /traces?err=breaker_open)", n))
	}
	if n := in.logTotal(evlog.Warn, "crawler.breaker"); n > 0 {
		f.Evidence = append(f.Evidence,
			fmt.Sprintf("event log holds %d breaker warnings (see /logs?component=crawler.breaker)", n))
	}
	return []Finding{f}
}

// deadHosts fires when fetches failed with host-down errors.
func deadHosts(in Input) []Finding {
	down := in.Metrics.Counter("crawler.fetch.hostdown")
	if down == 0 {
		return nil
	}
	errs := in.Metrics.Counter("crawler.fetch.errors")
	return []Finding{{
		Rule:     "dead-hosts",
		Severity: Warning,
		Score:    ratio(down, errs),
		Summary: fmt.Sprintf("%d fetch attempts hit dead hosts (%s of fetch errors)",
			down, pct(down, errs)),
		Evidence: []string{
			fmt.Sprintf("crawler.fetch.hostdown=%d crawler.fetch.errors=%d", down, errs),
		},
	}}
}

// spiderTrap fires when the per-host page cap rejects a large share of
// discovered links — the frontier is dominated by a few bottomless
// hosts (the paper's calendar-page trap).
func spiderTrap(in Input) []Finding {
	trapped := in.Metrics.Counter("crawler.frontier.trap")
	links := in.Metrics.Counter("crawler.links.discovered")
	if trapped == 0 || ratio(trapped, links) < 0.3 {
		return nil
	}
	f := Finding{
		Rule:     "spider-trap",
		Severity: Warning,
		Score:    ratio(trapped, links),
		Summary: fmt.Sprintf("%s of discovered links (%d of %d) hit the per-host page cap",
			pct(trapped, links), trapped, links),
		Evidence: []string{
			fmt.Sprintf("crawler.frontier.trap=%d crawler.links.discovered=%d", trapped, links),
		},
	}
	if n := in.logTotal(evlog.Debug, "crawler.frontier"); n > 0 {
		f.Evidence = append(f.Evidence,
			fmt.Sprintf("event log holds %d frontier decisions (see /logs?component=crawler.frontier)", n))
	}
	return []Finding{f}
}

// frontierExhausted notes that the crawl stopped because it ran out of
// URLs rather than hitting its page budget.
func frontierExhausted(in Input) []Finding {
	if in.Logs == nil || in.logTotal(evlog.Warn, "crawler.frontier") == 0 {
		return nil
	}
	found := false
	for _, r := range in.Logs.Records {
		if r.Component == "crawler.frontier" && r.Msg == "frontier.exhausted" {
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	return []Finding{{
		Rule:     "frontier-exhausted",
		Severity: Note,
		Score:    1,
		Summary:  "crawl ended on an empty frontier, not on its page budget",
		Evidence: []string{
			fmt.Sprintf("crawler.frontier.pending=%d at end of run",
				in.Metrics.Gauge("crawler.frontier.pending")),
			"event log records frontier.exhausted",
		},
	}}
}

// retryChurn fires when retries rival successful fetches — the crawl is
// spending its politeness budget re-fetching failures.
func retryChurn(in Input) []Finding {
	retries := in.Metrics.Counter("crawler.retry.scheduled")
	ok := in.Metrics.Counter("crawler.fetch.ok")
	if retries == 0 || ok == 0 || float64(retries) < 0.5*float64(ok) {
		return nil
	}
	exhausted := in.Metrics.Counter("crawler.retry.exhausted")
	f := Finding{
		Rule:     "retry-churn",
		Severity: Warning,
		Score:    ratio(retries, retries+ok),
		Summary: fmt.Sprintf("%d retries against %d successful fetches; %d URLs exhausted their budget",
			retries, ok, exhausted),
		Evidence: []string{
			fmt.Sprintf("crawler.retry.scheduled=%d crawler.fetch.ok=%d crawler.retry.exhausted=%d",
				retries, ok, exhausted),
		},
	}
	if n := in.traceErrs()["retry_exhausted"]; n > 0 {
		f.Evidence = append(f.Evidence,
			fmt.Sprintf("%d pinned traces carry retry_exhausted lineage (see /traces?err=retry_exhausted)", n))
	}
	return []Finding{f}
}

// rateLimitPressure notes heavy 429 traffic: the crawl is outrunning
// host rate limits and burning virtual time on retry-after waits.
func rateLimitPressure(in Input) []Finding {
	limited := in.Metrics.Counter("crawler.fetch.ratelimited")
	ok := in.Metrics.Counter("crawler.fetch.ok")
	if limited == 0 || float64(limited) < 0.25*float64(limited+ok) {
		return nil
	}
	return []Finding{{
		Rule:     "rate-limit-pressure",
		Severity: Note,
		Score:    ratio(limited, limited+ok),
		Summary:  fmt.Sprintf("%d fetches rate-limited against %d successes", limited, ok),
		Evidence: []string{
			fmt.Sprintf("crawler.fetch.ratelimited=%d crawler.fetch.ok=%d", limited, ok),
		},
	}}
}

// filterDominance fires when content filters reject more pages than the
// classifier ever sees — the corpus is being shaped by MIME/length/lang
// gates, not by relevance (the paper's silently-shrinking-corpus story).
func filterDominance(in Input) []Finding {
	mime := in.Metrics.Counter("crawler.filter.mime")
	lang := in.Metrics.Counter("crawler.filter.lang")
	length := in.Metrics.Counter("crawler.filter.length")
	filtered := mime + lang + length
	ok := in.Metrics.Counter("crawler.fetch.ok")
	if filtered == 0 || ok == 0 || ratio(filtered, ok) < 0.5 {
		return nil
	}
	dominant, dval := "mime", mime
	if lang > dval {
		dominant, dval = "lang", lang
	}
	if length > dval {
		dominant, dval = "length", length
	}
	return []Finding{{
		Rule:     "filter-dominance",
		Severity: Warning,
		Score:    ratio(filtered, ok),
		Summary: fmt.Sprintf("filters rejected %s of fetched pages (%d of %d); %s filter dominates with %d",
			pct(filtered, ok), filtered, ok, dominant, dval),
		Evidence: []string{
			fmt.Sprintf("crawler.filter.mime=%d crawler.filter.lang=%d crawler.filter.length=%d crawler.fetch.ok=%d",
				mime, lang, length, ok),
		},
	}}
}

// quarantineHeavyOps scans per-operator dataflow counters for operators
// whose quarantine rate crosses 25% — one finding per offender, ranked
// by rate (the paper's tagger-crashing-on-degenerate-pages story).
func quarantineHeavyOps(in Input) []Finding {
	names := make([]string, 0, len(in.Metrics.Counters))
	for n := range in.Metrics.Counters {
		if strings.HasPrefix(n, "dataflow.op.") && strings.HasSuffix(n, ".quarantined") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []Finding
	for _, n := range names {
		q := in.Metrics.Counters[n]
		op := strings.TrimSuffix(strings.TrimPrefix(n, "dataflow.op."), ".quarantined")
		inCount := in.Metrics.Counters["dataflow.op."+op+".in"]
		if q == 0 || inCount == 0 || ratio(q, inCount) < 0.25 {
			continue
		}
		f := Finding{
			Rule:     "quarantine-heavy-op",
			Severity: Critical,
			Score:    ratio(q, inCount),
			Summary: fmt.Sprintf("operator %s quarantines %s of its records (%d of %d)",
				op, pct(q, inCount), q, inCount),
			Evidence: []string{
				fmt.Sprintf("%s=%d dataflow.op.%s.in=%d", n, q, op, inCount),
			},
		}
		if t := in.traceErrs()["quarantine"]; t > 0 {
			f.Evidence = append(f.Evidence,
				fmt.Sprintf("%d pinned traces carry quarantine lineage (see /traces?err=quarantine)", t))
		}
		if lw := in.logTotal(evlog.Warn, "dataflow.op"); lw > 0 {
			f.Evidence = append(f.Evidence,
				fmt.Sprintf("event log holds %d operator warnings (see /logs?component=dataflow.op&level=warn)", lw))
		}
		out = append(out, f)
	}
	return out
}

// opPanics fires on any recovered operator panic: quarantined by the
// executor, but a panic is a bug, not data quality.
func opPanics(in Input) []Finding {
	names := make([]string, 0, len(in.Metrics.Counters))
	for n := range in.Metrics.Counters {
		if strings.HasPrefix(n, "dataflow.op.") && strings.HasSuffix(n, ".panics") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	var out []Finding
	for _, n := range names {
		p := in.Metrics.Counters[n]
		if p == 0 {
			continue
		}
		op := strings.TrimSuffix(strings.TrimPrefix(n, "dataflow.op."), ".panics")
		out = append(out, Finding{
			Rule:     "op-panics",
			Severity: Critical,
			Score:    1,
			Summary:  fmt.Sprintf("operator %s panicked %d times (recovered and quarantined)", op, p),
			Evidence: []string{fmt.Sprintf("%s=%d", n, p)},
		})
	}
	return out
}

// shardCrashLoop fires when the fleet supervisor recovered shard
// crashes: the run survived, but something is panicking workers — the
// fleet-level analogue of opPanics. Critical once any shard burned its
// whole recovery budget (a poisoned partition, not a transient fault).
func shardCrashLoop(in Input) []Finding {
	crashes := in.Metrics.Counter("fleet.shard.crashes")
	if crashes == 0 {
		return nil
	}
	restarts := in.Metrics.Counter("fleet.shard.restarts")
	fenced := in.Metrics.Counter("fleet.shard.fenced")
	sev := Warning
	if fenced > 0 {
		sev = Critical
	}
	f := Finding{
		Rule:     "shard-crash-loop",
		Severity: sev,
		Score:    ratio(crashes, crashes+5),
		Summary: fmt.Sprintf("fleet supervisor caught %d shard crash(es): %d checkpoint restart(s), %d shard(s) fenced",
			crashes, restarts, fenced),
		Evidence: []string{
			fmt.Sprintf("fleet.shard.crashes=%d fleet.shard.restarts=%d fleet.shard.fenced=%d",
				crashes, restarts, fenced),
		},
	}
	if n := in.logTotal(evlog.Warn, "fleet.supervisor"); n > 0 {
		f.Evidence = append(f.Evidence,
			fmt.Sprintf("event log holds %d supervisor warnings (see /logs?component=fleet.supervisor)", n))
	}
	return []Finding{f}
}

// degradedCompletion fires when the run finished without part of its
// host-hash space: shards fenced after exhausting their recovery budget
// mean the corpus has known coverage holes — loud, per the paper's
// silently-shrinking-corpus warning, never silent.
func degradedCompletion(in Input) []Finding {
	fenced := in.Metrics.Counter("fleet.shard.fenced")
	if fenced == 0 {
		return nil
	}
	dropped := in.Metrics.Counter("fleet.mail.dropped")
	f := Finding{
		Rule:     "degraded-completion",
		Severity: Critical,
		Score:    1,
		Summary: fmt.Sprintf("run completed DEGRADED: %d host-hash partition(s) fenced, %d cross-shard discoveries dropped",
			fenced, dropped),
		Evidence: []string{
			fmt.Sprintf("fleet.shard.fenced=%d fleet.mail.dropped=%d", fenced, dropped),
			"corpus manifest carries `deg` footer lines enumerating the missing partitions",
		},
	}
	if n := in.logTotal(evlog.Error, "fleet.supervisor"); n > 0 {
		f.Evidence = append(f.Evidence,
			fmt.Sprintf("event log holds %d fencing records (see /logs?component=fleet.supervisor&level=error)", n))
	}
	return []Finding{f}
}

// errorBurst reports components that logged error-level records — the
// log pillar's own alarm, independent of metrics coverage.
func errorBurst(in Input) []Finding {
	if in.Logs == nil {
		return nil
	}
	var parts []string
	var total uint64
	keys := make([]string, 0, len(in.Logs.Totals))
	for k := range in.Logs.Totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if comp, ok := strings.CutPrefix(k, "error "); ok {
			parts = append(parts, fmt.Sprintf("%s=%d", comp, in.Logs.Totals[k]))
			total += in.Logs.Totals[k]
		}
	}
	if total == 0 {
		return nil
	}
	return []Finding{{
		Rule:     "error-burst",
		Severity: Warning,
		Score:    ratio(int64(total), int64(total)+10),
		Summary:  fmt.Sprintf("%d error-level log records emitted", total),
		Evidence: []string{"per component: " + strings.Join(parts, " ")},
	}}
}

// logShedding notes when retention shed Warn/Error records: the
// diagnosis above may be built on a partial log.
func logShedding(in Input) []Finding {
	if in.Logs == nil || in.Logs.Stats.PinDropped == 0 {
		return nil
	}
	return []Finding{{
		Rule:     "log-shedding",
		Severity: Note,
		Score:    1,
		Summary: fmt.Sprintf("%d warn/error log records were shed by retention; the event-log evidence is partial",
			in.Logs.Stats.PinDropped),
		Evidence: []string{fmt.Sprintf("evlog stats: %+v", in.Logs.Stats)},
	}}
}
