package prof

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Snapshot is a frozen Profiler: config plus every scope sorted by
// name, all lanes included. It is the unit that rides checkpoints,
// merges into fleet results, and renders the exports. Only the virtual
// lane (Calls, VirtualMs) feeds the byte-identity-gated exports; the
// wall lane rides along for WallText.
type Snapshot struct {
	Config Config       `json:"config"`
	Scopes []*ScopeData `json:"scopes,omitempty"`
}

// ScopeData is one scope's frozen accumulators. Calls and VirtualMs are
// the virtual lane; Brackets, WallNs, and the alloc deltas are the wall
// lane.
type ScopeData struct {
	Name       string `json:"name"`
	Calls      int64  `json:"calls"`
	VirtualMs  int64  `json:"virtual_ms"`
	Brackets   int64  `json:"brackets,omitempty"`
	WallNs     int64  `json:"wall_ns,omitempty"`
	AllocBytes int64  `json:"alloc_bytes,omitempty"`
	AllocObjs  int64  `json:"alloc_objs,omitempty"`
}

// Snapshot freezes the profiler: every scope sorted by name, a deep
// copy decoupled from further attribution.
func (p *Profiler) Snapshot() *Snapshot {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := &Snapshot{Config: p.cfg, Scopes: make([]*ScopeData, 0, len(p.nodes))}
	names := make([]string, 0, len(p.nodes))
	for n := range p.nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		n := p.nodes[name]
		out.Scopes = append(out.Scopes, &ScopeData{
			Name:       name,
			Calls:      n.calls.Load(),
			VirtualMs:  n.virtualMs.Load(),
			Brackets:   n.brackets.Load(),
			WallNs:     n.wallNs.Load(),
			AllocBytes: n.allocBytes.Load(),
			AllocObjs:  n.allocObjs.Load(),
		})
	}
	return out
}

// Load replaces the profiler's state with the snapshot's — the restore
// half of checkpoint/resume. The snapshot's config is adopted, and
// subsequent attribution continues the accumulators exactly where they
// stopped, so a resumed run's virtual exports are byte-identical to an
// uninterrupted one's.
func (p *Profiler) Load(s *Snapshot) {
	if p == nil || s == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cfg = s.Config
	p.nodes = make(map[string]*node, len(s.Scopes))
	for _, sd := range s.Scopes {
		if sd == nil {
			continue
		}
		n := &node{}
		n.calls.Store(sd.Calls)
		n.virtualMs.Store(sd.VirtualMs)
		n.brackets.Store(sd.Brackets)
		n.wallNs.Store(sd.WallNs)
		n.allocBytes.Store(sd.AllocBytes)
		n.allocObjs.Store(sd.AllocObjs)
		p.nodes[sd.Name] = n
	}
}

// Merge folds shard snapshots into one fleet snapshot: per-scope sums
// keyed by name, scopes sorted by name, config from the first non-nil
// snapshot. Callers pass snapshots in shard order (the same discipline
// as registry/trace/evlog merges); summation makes the result
// independent of DoP for a fixed shard count.
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{}
	byName := map[string]*ScopeData{}
	var gotCfg bool
	for _, s := range snaps {
		if s == nil {
			continue
		}
		if !gotCfg {
			out.Config = s.Config
			gotCfg = true
		}
		for _, sd := range s.Scopes {
			if sd == nil {
				continue
			}
			acc := byName[sd.Name]
			if acc == nil {
				acc = &ScopeData{Name: sd.Name}
				byName[sd.Name] = acc
			}
			acc.Calls += sd.Calls
			acc.VirtualMs += sd.VirtualMs
			acc.Brackets += sd.Brackets
			acc.WallNs += sd.WallNs
			acc.AllocBytes += sd.AllocBytes
			acc.AllocObjs += sd.AllocObjs
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out.Scopes = make([]*ScopeData, 0, len(names))
	for _, n := range names {
		out.Scopes = append(out.Scopes, byName[n])
	}
	return out
}

// Get returns the named scope's data, or nil when absent.
func (s *Snapshot) Get(name string) *ScopeData {
	if s == nil {
		return nil
	}
	i := sort.Search(len(s.Scopes), func(i int) bool { return s.Scopes[i].Name >= name })
	if i < len(s.Scopes) && s.Scopes[i].Name == name {
		return s.Scopes[i]
	}
	return nil
}

// Narrow returns a snapshot view holding only the scopes whose names
// contain substr (the snapshot itself for the empty string). Scope data
// is shared with the receiver, not copied.
func (s *Snapshot) Narrow(substr string) *Snapshot {
	if s == nil || substr == "" {
		return s
	}
	out := &Snapshot{Config: s.Config}
	for _, sd := range s.Scopes {
		if strings.Contains(sd.Name, substr) {
			out.Scopes = append(out.Scopes, sd)
		}
	}
	return out
}

// Export is the deterministic virtual-lane view: per-scope calls plus
// self and cumulative virtual milliseconds. Self is the time charged to
// the scope itself; cumulative adds every descendant's self (dots
// define descent), so interior tree nodes that only bracket the wall
// lane still roll their children up. This is the shape JSON renders and
// `benchjson profdiff` consumes.
type Export struct {
	TotalVirtualMs int64         `json:"total_virtual_ms"`
	Scopes         []ExportScope `json:"scopes"`
}

// ExportScope is one scope row of an Export.
type ExportScope struct {
	Name   string `json:"name"`
	Calls  int64  `json:"calls"`
	SelfMs int64  `json:"self_ms"`
	CumMs  int64  `json:"cum_ms"`
}

// Export derives the virtual-lane view: scopes sorted by name, self =
// recorded virtual ms, cum = self plus all descendants' self, total =
// sum of every self.
func (s *Snapshot) Export() Export {
	out := Export{Scopes: []ExportScope{}}
	if s == nil {
		return out
	}
	out.Scopes = make([]ExportScope, len(s.Scopes))
	for i, sd := range s.Scopes {
		out.Scopes[i] = ExportScope{Name: sd.Name, Calls: sd.Calls, SelfMs: sd.VirtualMs, CumMs: sd.VirtualMs}
		out.TotalVirtualMs += sd.VirtualMs
	}
	// Snapshots are name-sorted, so a scope's descendants are the
	// contiguous run of names right after it prefixed name+".".
	for i := range out.Scopes {
		prefix := out.Scopes[i].Name + "."
		for j := i + 1; j < len(out.Scopes) && strings.HasPrefix(out.Scopes[j].Name, prefix); j++ {
			out.Scopes[i].CumMs += out.Scopes[j].SelfMs
		}
	}
	return out
}

// JSON renders the virtual-lane export as deterministic indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	e := s.Export()
	return json.MarshalIndent(e, "", "  ")
}

// TopK renders the k most expensive scopes by self virtual time (ties
// by name; k <= 0 means all) as a fixed-width table with self-percent
// of total — byte-identical for identical virtual lanes.
func (s *Snapshot) TopK(k int) string {
	e := s.Export()
	rows := make([]ExportScope, len(e.Scopes))
	copy(rows, e.Scopes)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].SelfMs != rows[j].SelfMs {
			return rows[i].SelfMs > rows[j].SelfMs
		}
		return rows[i].Name < rows[j].Name
	})
	if k > 0 && k < len(rows) {
		rows = rows[:k]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %12s %12s %12s %7s\n", "SCOPE", "CALLS", "SELF_MS", "CUM_MS", "SELF%")
	for _, r := range rows {
		pct := 0.0
		if e.TotalVirtualMs > 0 {
			pct = 100 * float64(r.SelfMs) / float64(e.TotalVirtualMs)
		}
		fmt.Fprintf(&b, "%-40s %12d %12d %12d %6.1f%%\n", r.Name, r.Calls, r.SelfMs, r.CumMs, pct)
	}
	fmt.Fprintf(&b, "%-40s %12s %12d\n", "TOTAL", "", e.TotalVirtualMs)
	return b.String()
}

// Folded renders the virtual lane as folded flame-graph stacks — one
// line per scope, dots become semicolon frame separators, weight is the
// scope's self virtual milliseconds:
//
//	crawl;cycle;fetch 246800
//
// Lines sort by scope name. Feed straight into flamegraph.pl or any
// folded-stack viewer; byte-identical across DoP for a fixed shard set.
func (s *Snapshot) Folded() string {
	e := s.Export()
	var b strings.Builder
	for _, r := range e.Scopes {
		b.WriteString(strings.ReplaceAll(r.Name, ".", ";"))
		fmt.Fprintf(&b, " %d\n", r.SelfMs)
	}
	return b.String()
}

// WallText renders the wall lane — one line per scope that recorded any
// wall time, with bracketed wall milliseconds and (when measured)
// allocation deltas. Nested brackets overlap, so rows are bracket
// totals, not additive. This export is for real-hardware tuning and is
// deliberately outside every byte-identity contract.
func (s *Snapshot) WallText() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, sd := range s.Scopes {
		if sd.Brackets == 0 && sd.WallNs == 0 && sd.AllocBytes == 0 && sd.AllocObjs == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s brackets=%d wall_ms=%.3f", sd.Name, sd.Brackets, float64(sd.WallNs)/1e6)
		if sd.AllocBytes != 0 || sd.AllocObjs != 0 {
			fmt.Fprintf(&b, " alloc_bytes=%d alloc_objs=%d", sd.AllocBytes, sd.AllocObjs)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
