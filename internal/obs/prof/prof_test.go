package prof

import (
	"strings"
	"testing"
)

// sampleProfiler builds a small two-level scope tree on the virtual
// lane: a parent that only brackets the wall lane and three children
// carrying the virtual cost.
func sampleProfiler() *Profiler {
	p := New(Config{})
	cycle := p.Scope("crawl.cycle")
	fetch := p.Scope("crawl.cycle.fetch")
	filter := p.Scope("crawl.cycle.filter")
	classify := p.Scope("crawl.cycle.classify")
	ckpt := p.Scope("crawl.checkpoint")
	h := cycle.Enter()
	fetch.Add(10, 2000)
	filter.Add(3, 300)
	classify.Add(7, 1750)
	h.Exit()
	ckpt.Add(1, 0)
	return p
}

func TestExportSelfCumDerivation(t *testing.T) {
	e := sampleProfiler().Snapshot().Export()
	if e.TotalVirtualMs != 4050 {
		t.Fatalf("total = %d, want 4050", e.TotalVirtualMs)
	}
	byName := map[string]ExportScope{}
	for _, sc := range e.Scopes {
		byName[sc.Name] = sc
	}
	cycle := byName["crawl.cycle"]
	if cycle.SelfMs != 0 || cycle.CumMs != 4050 {
		t.Errorf("crawl.cycle self=%d cum=%d, want self=0 cum=4050", cycle.SelfMs, cycle.CumMs)
	}
	if cycle.Calls != 0 {
		t.Errorf("crawl.cycle calls=%d, want 0 (wall brackets stay out of the virtual lane)", cycle.Calls)
	}
	fetch := byName["crawl.cycle.fetch"]
	if fetch.SelfMs != 2000 || fetch.CumMs != 2000 || fetch.Calls != 10 {
		t.Errorf("crawl.cycle.fetch = %+v, want self=cum=2000 calls=10", fetch)
	}
	if ckpt := byName["crawl.checkpoint"]; ckpt.CumMs != 0 || ckpt.Calls != 1 {
		t.Errorf("crawl.checkpoint = %+v, want cum=0 calls=1", ckpt)
	}
}

func TestExportsByteIdenticalAcrossRuns(t *testing.T) {
	a, b := sampleProfiler().Snapshot(), sampleProfiler().Snapshot()
	if got, want := a.TopK(0), b.TopK(0); got != want {
		t.Errorf("TopK diverged:\n%s\nvs\n%s", got, want)
	}
	if got, want := a.Folded(), b.Folded(); got != want {
		t.Errorf("Folded diverged:\n%s\nvs\n%s", got, want)
	}
	aj, err := a.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, err := b.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(aj) != string(bj) {
		t.Errorf("JSON diverged:\n%s\nvs\n%s", aj, bj)
	}
}

func TestTopKOrderAndLimit(t *testing.T) {
	s := sampleProfiler().Snapshot()
	top := s.TopK(2)
	lines := strings.Split(strings.TrimRight(top, "\n"), "\n")
	// Header + 2 rows + TOTAL.
	if len(lines) != 4 {
		t.Fatalf("TopK(2) rendered %d lines, want 4:\n%s", len(lines), top)
	}
	if !strings.HasPrefix(lines[1], "crawl.cycle.fetch") {
		t.Errorf("top row = %q, want crawl.cycle.fetch (largest self)", lines[1])
	}
	if !strings.HasPrefix(lines[2], "crawl.cycle.classify") {
		t.Errorf("second row = %q, want crawl.cycle.classify", lines[2])
	}
	if !strings.HasPrefix(lines[3], "TOTAL") {
		t.Errorf("last row = %q, want TOTAL", lines[3])
	}
}

func TestFoldedStacks(t *testing.T) {
	s := sampleProfiler().Snapshot()
	folded := s.Folded()
	if !strings.Contains(folded, "crawl;cycle;fetch 2000\n") {
		t.Errorf("Folded missing fetch stack:\n%s", folded)
	}
	lines := strings.Split(strings.TrimRight(folded, "\n"), "\n")
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Errorf("Folded lines not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
}

func TestSnapshotLoadRoundTrip(t *testing.T) {
	orig := sampleProfiler()
	snap := orig.Snapshot()
	resumed := New(Config{})
	resumed.Load(snap)
	// Continue attribution on both and compare the virtual exports.
	for _, p := range []*Profiler{orig, resumed} {
		p.Scope("crawl.cycle.fetch").Add(5, 1000)
	}
	a, err := orig.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := resumed.Snapshot().JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("resumed profile diverged from uninterrupted:\n%s\nvs\n%s", a, b)
	}
}

func TestMergeSumsAcrossShards(t *testing.T) {
	shard := func(fetchMs int64) *Snapshot {
		p := New(Config{})
		p.Scope("crawl.cycle.fetch").Add(1, fetchMs)
		p.Scope("crawl.cycle.filter").Add(1, 10)
		return p.Snapshot()
	}
	merged := Merge(shard(100), nil, shard(250))
	if got := merged.Get("crawl.cycle.fetch"); got == nil || got.VirtualMs != 350 || got.Calls != 2 {
		t.Errorf("merged fetch = %+v, want 350 ms over 2 calls", got)
	}
	if got := merged.Get("crawl.cycle.filter"); got == nil || got.VirtualMs != 20 {
		t.Errorf("merged filter = %+v, want 20 ms", got)
	}
	// Merge of a split stream equals the unsplit stream.
	whole := New(Config{})
	whole.Scope("crawl.cycle.fetch").Add(2, 350)
	whole.Scope("crawl.cycle.filter").Add(2, 20)
	a, _ := merged.JSON()
	b, _ := whole.Snapshot().JSON()
	if string(a) != string(b) {
		t.Errorf("merged-shards export != unsplit export:\n%s\nvs\n%s", a, b)
	}
}

func TestNilSafety(t *testing.T) {
	var p *Profiler
	if p.Enabled() {
		t.Error("nil profiler reports Enabled")
	}
	sc := p.Scope("anything.goes")
	if sc.Enabled() {
		t.Error("scope from nil profiler reports Enabled")
	}
	sc.Add(1, 100)
	h := sc.Enter()
	h.Exit()
	if snap := p.Snapshot(); snap != nil {
		t.Errorf("nil profiler snapshot = %+v, want nil", snap)
	}
	p.Load(&Snapshot{})
	var zero Scope
	zero.Add(1, 1)
	zero.Enter().Exit()
	if got := (*Snapshot)(nil).TopK(5); !strings.Contains(got, "TOTAL") {
		t.Errorf("nil snapshot TopK = %q, want header+TOTAL", got)
	}
	if got := (*Snapshot)(nil).WallText(); got != "" {
		t.Errorf("nil snapshot WallText = %q, want empty", got)
	}
}

func TestWallLane(t *testing.T) {
	p := New(Config{})
	sc := p.Scope("io.read")
	h := sc.Enter()
	h.Exit()
	sd := p.Snapshot().Get("io.read")
	if sd == nil || sd.Brackets != 1 {
		t.Fatalf("wall bracket scope = %+v, want brackets=1", sd)
	}
	if sd.Calls != 0 || sd.VirtualMs != 0 {
		t.Errorf("wall bracket leaked into the virtual lane: %+v (lanes must not mix)", sd)
	}
	if sd.WallNs < 0 {
		t.Errorf("wall bracket charged negative wall time: %d ns", sd.WallNs)
	}
	if txt := p.Snapshot().WallText(); !strings.Contains(txt, "io.read brackets=1") {
		t.Errorf("WallText missing the bracketed scope:\n%s", txt)
	}
}

func TestAllocLane(t *testing.T) {
	p := New(Config{Alloc: true})
	sc := p.Scope("alloc.heavy")
	var sink []byte
	h := sc.Enter()
	sink = make([]byte, 1<<20)
	h.Exit()
	_ = sink
	sd := p.Snapshot().Get("alloc.heavy")
	if sd == nil || sd.AllocBytes < 1<<20 {
		t.Errorf("alloc lane recorded %+v, want >= 1 MiB across the bracket", sd)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	p := New(Config{})
	sc := p.Scope("hot.loop")
	if n := testing.AllocsPerRun(100, func() { sc.Add(1, 5) }); n != 0 {
		t.Errorf("Scope.Add allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { sc.Enter().Exit() }); n != 0 {
		t.Errorf("Enter/Exit allocates %.1f per bracket, want 0", n)
	}
	var off Scope
	if n := testing.AllocsPerRun(100, func() { off.Add(1, 5); off.Enter().Exit() }); n != 0 {
		t.Errorf("disabled scope allocates %.1f per call, want 0", n)
	}
}

func TestScopeName(t *testing.T) {
	if got := ScopeName("dataflow", "op", "pos_tag"); got != "dataflow.op.pos_tag" {
		t.Errorf("ScopeName = %q", got)
	}
}

func TestNarrow(t *testing.T) {
	s := sampleProfiler().Snapshot()
	n := s.Narrow("cycle")
	if len(n.Scopes) != 4 {
		t.Errorf("Narrow(cycle) kept %d scopes, want 4", len(n.Scopes))
	}
	if s.Narrow("") != s {
		t.Error("Narrow(\"\") should return the receiver")
	}
	if got := n.Get("crawl.checkpoint"); got != nil {
		t.Errorf("narrowed snapshot still has crawl.checkpoint: %+v", got)
	}
}
