// Package prof is the fifth observability pillar: a deterministic
// hierarchical cost profiler. It attributes virtual milliseconds, call
// counts, and (optionally) allocation deltas to a stable dotted scope
// tree — crawl cycle → frontier/fetch/filter/classify/checkpoint,
// dataflow execution → operator, IE → stage — so "where did the time
// go" becomes a byte-identical export instead of a flamegraph that
// changes with the hardware.
//
// Two lanes, never mixed on one scope:
//
//   - The virtual lane (Scope.Add) charges deterministic virtual-clock
//     milliseconds and call counts. It is the lane the byte-stable
//     exports (TopK, Folded, JSON) render, the lane prof.Merge folds
//     shard-by-shard (DoP 1 vs N identical for a fixed shard count),
//     and the lane Snapshot/Load replays across checkpoint/resume.
//   - The wall lane (Scope.Enter/Handle.Exit) brackets real wall-clock
//     nanoseconds and allocation deltas for real-hardware tuning. It is
//     intentionally nondeterministic, rides snapshots for convenience,
//     and renders only through WallText — never through the
//     identity-gated exports.
//
// Scope resolution (Profiler.Scope) locks and may allocate; callers
// resolve scopes once at setup and keep the value-type Scope on the hot
// path, where Add/Enter/Exit are atomic and allocation-free. Scope
// names follow the constant lower-dotted grammar metric names use; the
// lintx profname check enforces this at call sites outside this
// package, with ScopeName as the sanctioned builder for computed names.
package prof

import (
	"runtime/metrics"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config shapes a Profiler. The zero value is the CLI default.
type Config struct {
	// Alloc turns on allocation-delta measurement in the wall lane:
	// each Enter/Exit bracket also charges the goroutine-global heap
	// alloc deltas (bytes and objects) observed across the bracket.
	// Off by default — reading runtime metrics costs more than the
	// two clock reads the wall lane otherwise needs.
	Alloc bool `json:"alloc,omitempty"`
}

// node is one scope's accumulators. All fields are atomics so the
// value-type Scope/Handle hot-path operations need no lock. calls and
// virtualMs are the virtual lane; brackets, wallNs, and the alloc
// counters are the wall lane — kept strictly apart so wall brackets
// (checkpoints included) contribute nothing to the deterministic
// exports and checkpoint/resume identity survives bracketing the
// checkpoint itself.
type node struct {
	calls      atomic.Int64
	virtualMs  atomic.Int64
	brackets   atomic.Int64
	wallNs     atomic.Int64
	allocBytes atomic.Int64
	allocObjs  atomic.Int64
}

// Profiler owns the scope tree. All methods are safe on a nil receiver
// (Scope returns a disabled Scope, Snapshot returns nil), so callers
// gate profiling with a single nil check, and safe for concurrent use.
type Profiler struct {
	mu    sync.Mutex
	cfg   Config
	nodes map[string]*node
}

// New returns an empty Profiler with cfg.
func New(cfg Config) *Profiler {
	return &Profiler{cfg: cfg, nodes: map[string]*node{}}
}

// Enabled reports whether the profiler is live. A nil Profiler is the
// "profiling off" state.
func (p *Profiler) Enabled() bool { return p != nil }

// Config returns the profiler's config.
func (p *Profiler) Config() Config {
	if p == nil {
		return Config{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cfg
}

// Scope resolves (creating if absent) the named scope. Names are
// constant lower-dotted paths ("crawl.cycle.fetch"); dots define the
// tree the exports derive self-vs-cumulative accounting from. Resolve
// once at setup — Scope locks; the returned value does not.
func (p *Profiler) Scope(name string) Scope {
	if p == nil {
		return Scope{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.nodes[name]
	if n == nil {
		n = &node{}
		p.nodes[name] = n
	}
	return Scope{p: p, n: n}
}

// ScopeName joins parts into a dotted scope path — the sanctioned
// builder for computed scope names (mirror of trace.TraceName and
// obs.MetricName), recognized by the lintx profname check.
func ScopeName(parts ...string) string {
	return strings.Join(parts, ".")
}

// Scope is a resolved handle on one scope. The zero value (and any
// Scope from a nil Profiler) is disabled: every method is a cheap
// no-op, so hot paths need no branch beyond the one inside.
type Scope struct {
	p *Profiler
	n *node
}

// Enabled reports whether attribution on this scope goes anywhere.
func (s Scope) Enabled() bool { return s.n != nil }

// Add charges the virtual lane: calls call-counts and virtualMs
// deterministic virtual-clock milliseconds. This is the lane the
// byte-identical exports render. Allocation-free.
func (s Scope) Add(calls, virtualMs int64) {
	if s.n == nil {
		return
	}
	s.n.calls.Add(calls)
	s.n.virtualMs.Add(virtualMs)
}

// Handle is an open wall-lane bracket. The zero value is disabled.
type Handle struct {
	s       Scope
	startNs int64
	allocB  uint64
	allocO  uint64
	alloc   bool
}

// Enter opens a wall-lane bracket on the scope: Exit charges one
// bracket, the elapsed wall nanoseconds, and (when Config.Alloc is set)
// the heap allocation deltas across the bracket. Allocation-free; the
// wall lane is the one place this package reads the real clock, and it
// never feeds the deterministic exports.
func (s Scope) Enter() Handle {
	if s.n == nil {
		return Handle{}
	}
	h := Handle{s: s, startNs: time.Now().UnixNano()}
	if s.p != nil && s.p.cfg.Alloc {
		h.alloc = true
		h.allocB, h.allocO = readAlloc()
	}
	return h
}

// Exit closes the bracket opened by Enter. No-op on a zero Handle.
func (h Handle) Exit() {
	if h.s.n == nil {
		return
	}
	n := h.s.n
	n.brackets.Add(1)
	n.wallNs.Add(time.Now().UnixNano() - h.startNs)
	if h.alloc {
		b, o := readAlloc()
		n.allocBytes.Add(int64(b - h.allocB))
		n.allocObjs.Add(int64(o - h.allocO))
	}
}

// allocMetrics are the runtime/metrics samples the alloc lane reads.
// Cumulative heap allocation counters: cheap to read, no stop-the-world.
const (
	allocBytesMetric = "/gc/heap/allocs:bytes"
	allocObjsMetric  = "/gc/heap/allocs:objects"
)

// readAlloc returns the process-cumulative heap allocation counters.
func readAlloc() (bytes, objs uint64) {
	var s [2]metrics.Sample
	s[0].Name = allocBytesMetric
	s[1].Name = allocObjsMetric
	metrics.Read(s[:])
	return s[0].Value.Uint64(), s[1].Value.Uint64()
}
