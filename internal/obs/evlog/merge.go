package evlog

import "webtextie/internal/obs/trace"

// Merge folds per-shard snapshots into one export-ready snapshot: the
// record union re-sorted into the canonical (AtMs, line) order, totals
// and loss counters summed. The result is deterministic in the record
// multisets alone — shards emit on independent virtual clocks, so there
// is no meaningful global emission order to preserve, and the canonical
// sort gives every fleet exactly one byte rendering.
//
// Rate-bucket states are dropped: token budgets are per-shard throttle
// state, not fleet observables, and a merged snapshot is an export
// surface, not a resume point (resume goes through the per-shard
// checkpoints, each carrying its own snapshot).
func Merge(snaps ...*Snapshot) *Snapshot {
	out := &Snapshot{Records: []Record{}}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for _, r := range s.Records {
			r.Attrs = append([]trace.Attr(nil), r.Attrs...)
			out.Records = append(out.Records, r)
		}
		for k, v := range s.Totals {
			if out.Totals == nil {
				out.Totals = map[string]uint64{}
			}
			out.Totals[k] += v
		}
		out.Stats.Emitted += s.Stats.Emitted
		out.Stats.DroppedSampled += s.Stats.DroppedSampled
		out.Stats.DroppedRated += s.Stats.DroppedRated
		out.Stats.DroppedRetention += s.Stats.DroppedRetention
		out.Stats.PinDropped += s.Stats.PinDropped
	}
	sortRecords(out.Records)
	return out
}
