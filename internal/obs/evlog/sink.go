package evlog

import (
	"sort"
	"sync"

	"webtextie/internal/obs"
	"webtextie/internal/obs/trace"
)

// Config bounds a Sink. The retention model keeps two classes of
// records, mirroring the trace recorder's pure-function discipline:
//
//	pinned     Warn/Error records, bottom-PinKeep by FNV priority
//	tail       the TailKeep most recent Debug/Info records
//	reservoir  a bottom-k hash sample of Debug/Info tail evictees
//
// All three are pure functions of the emitted record multiset —
// evict-max for the pinned class, evict-min for the tail, and
// bottom-k-by-priority for the reservoir are order-independent — so the
// retained set does not depend on emission interleaving, and two
// same-seed runs export byte-identical logs. Exact per-(component,
// level) totals are always kept, even for shed records.
type Config struct {
	// Seed feeds sampling decisions and retention priorities.
	Seed uint64
	// MinLevel drops records below it at emission (default Debug).
	MinLevel Level
	// TailKeep is the ring of most recent Debug/Info records.
	TailKeep int
	// ReservoirKeep is the bottom-k sample size over tail evictees.
	ReservoirKeep int
	// PinKeep caps retained Warn/Error records.
	PinKeep int
}

// DefaultConfig returns the calibrated sink bounds for a seed.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:          seed,
		TailKeep:      256,
		ReservoirKeep: 64,
		PinKeep:       256,
	}
}

// bucket is one component's token bucket, in virtual time. The state is
// exported so snapshots can carry budgets across checkpoint/resume.
type bucket struct {
	Burst  float64 `json:"burst"`
	PerSec float64 `json:"per_sec"`
	Tokens float64 `json:"tokens"`
	LastMs int64   `json:"last_ms"`
}

// take spends one token, refilling first from elapsed virtual time.
func (b *bucket) take(atMs int64) bool {
	if atMs > b.LastMs {
		b.Tokens += float64(atMs-b.LastMs) * b.PerSec / 1000
		if b.Tokens > b.Burst {
			b.Tokens = b.Burst
		}
		b.LastMs = atMs
	}
	if b.Tokens < 1 {
		return false
	}
	b.Tokens--
	return true
}

// Sink collects records under a single mutex. All methods are safe for
// concurrent use; a nil *Sink is a valid always-off sink.
type Sink struct {
	mu  sync.Mutex
	cfg Config
	reg *obs.Registry

	pinned []Record // Warn/Error, bottom-PinKeep by priority
	tail   []Record // Debug/Info, most recent TailKeep
	resv   []Record // bottom-ReservoirKeep sample of tail evictees

	totals  map[string]uint64 // "<level> <component>" -> emitted count
	buckets map[string]*bucket
	stats   Stats

	counters map[string]*obs.Counter // derived-metric cache
}

// Stats are the sink's emission and loss counters. Emitted counts every
// record past the level gate (including ones later shed by retention);
// the drop counters partition everything that did not survive.
type Stats struct {
	Emitted          uint64 `json:"emitted"`
	DroppedSampled   uint64 `json:"dropped_sampled,omitempty"`
	DroppedRated     uint64 `json:"dropped_rated,omitempty"`
	DroppedRetention uint64 `json:"dropped_retention,omitempty"`
	PinDropped       uint64 `json:"pin_dropped,omitempty"`
}

// NewSink returns a sink with the given bounds. Non-positive bounds fall
// back to DefaultConfig values.
func NewSink(cfg Config) *Sink {
	def := DefaultConfig(cfg.Seed)
	if cfg.TailKeep <= 0 {
		cfg.TailKeep = def.TailKeep
	}
	if cfg.ReservoirKeep <= 0 {
		cfg.ReservoirKeep = def.ReservoirKeep
	}
	if cfg.PinKeep <= 0 {
		cfg.PinKeep = def.PinKeep
	}
	return &Sink{
		cfg:      cfg,
		totals:   map[string]uint64{},
		buckets:  map[string]*bucket{},
		counters: map[string]*obs.Counter{},
	}
}

// WithMetrics derives log->metric counters into the registry: every
// emitted record increments evlog.records.<component>.<level>.
func (s *Sink) WithMetrics(reg *obs.Registry) *Sink {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.reg = reg
	s.mu.Unlock()
	return s
}

// Logger returns a component-scoped logger. Components are dotted
// lower-case constants ("crawler.fetch", "dataflow.op"); the lintx
// logcall check enforces the grammar. A nil sink returns the no-op zero
// Logger.
func (s *Sink) Logger(component string) Logger {
	if s == nil {
		return Logger{}
	}
	return Logger{s: s, component: component}
}

// totalKey is the totals map key: "<level> <component>" (level first so
// the sorted text rendering groups by severity).
func totalKey(lv Level, component string) string {
	return lv.String() + " " + component
}

func (s *Sink) countSampledDrop() {
	s.mu.Lock()
	s.stats.DroppedSampled++
	s.mu.Unlock()
}

func (s *Sink) ensureBucket(component string, burst int, perSec float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[component]; !ok {
		s.buckets[component] = &bucket{Burst: float64(burst), PerSec: perSec, Tokens: float64(burst)}
	}
}

// emit admits one record through the level gate, the rate bucket, and
// retention, and feeds the totals and derived counters.
func (s *Sink) emit(rateKey string, r Record) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r.Level < s.cfg.MinLevel {
		return
	}
	if rateKey != "" {
		if b := s.buckets[rateKey]; b != nil && !b.take(r.AtMs) {
			s.stats.DroppedRated++
			return
		}
	}
	s.stats.Emitted++
	s.totals[totalKey(r.Level, r.Component)]++
	if s.reg != nil {
		s.counterLocked(r.Component, r.Level).Inc()
	}
	if r.Level >= Warn {
		s.admitPinnedLocked(r)
	} else {
		s.admitTailLocked(r)
	}
}

// counterLocked resolves the derived obs counter through a small cache
// (the registry lookup allocates and locks; emissions are hot).
func (s *Sink) counterLocked(component string, lv Level) *obs.Counter {
	key := totalKey(lv, component)
	c := s.counters[key]
	if c == nil {
		c = s.reg.Counter(MetricName("evlog", "records", component, lv.String()))
		s.counters[key] = c
	}
	return c
}

// prio is a record's seeded retention priority — a pure function of the
// record's canonical rendering, so it is independent of emission order.
func (s *Sink) prio(r Record) uint64 {
	return fnvMix(s.cfg.Seed, fnvString(r.line()))
}

// admitPinnedLocked keeps the bottom-PinKeep Warn/Error records by
// (priority, line): append, then evict the max when over.
func (s *Sink) admitPinnedLocked(r Record) {
	s.pinned = append(s.pinned, r)
	if len(s.pinned) <= s.cfg.PinKeep {
		return
	}
	worst := 0
	for i := 1; i < len(s.pinned); i++ {
		if s.recordLess(s.pinned[worst], s.pinned[i]) {
			worst = i
		}
	}
	s.pinned[worst] = s.pinned[len(s.pinned)-1]
	s.pinned = s.pinned[:len(s.pinned)-1]
	s.stats.PinDropped++
}

// recordLess orders records by (priority, line) — the total order the
// pinned class and the reservoir evict against.
func (s *Sink) recordLess(a, b Record) bool {
	pa, pb := s.prio(a), s.prio(b)
	if pa != pb {
		return pa < pb
	}
	return a.line() < b.line()
}

// admitTailLocked keeps the most recent TailKeep Debug/Info records by
// (AtMs, priority, line): append, then evict the min (the oldest) into
// the reservoir when over.
func (s *Sink) admitTailLocked(r Record) {
	s.tail = append(s.tail, r)
	if len(s.tail) <= s.cfg.TailKeep {
		return
	}
	oldest := 0
	for i := 1; i < len(s.tail); i++ {
		if s.tailLess(s.tail[i], s.tail[oldest]) {
			oldest = i
		}
	}
	ev := s.tail[oldest]
	s.tail[oldest] = s.tail[len(s.tail)-1]
	s.tail = s.tail[:len(s.tail)-1]
	s.offerReservoirLocked(ev)
}

// tailLess orders tail records by (AtMs, priority, line) — virtual time
// first, so the tail is genuinely the most recent window.
func (s *Sink) tailLess(a, b Record) bool {
	if a.AtMs != b.AtMs {
		return a.AtMs < b.AtMs
	}
	return s.recordLess(a, b)
}

// offerReservoirLocked implements bottom-k sampling over tail evictees:
// the k candidates with the smallest (priority, line) stay.
func (s *Sink) offerReservoirLocked(r Record) {
	if len(s.resv) < s.cfg.ReservoirKeep {
		s.resv = append(s.resv, r)
		return
	}
	worst := 0
	for i := 1; i < len(s.resv); i++ {
		if s.recordLess(s.resv[worst], s.resv[i]) {
			worst = i
		}
	}
	if s.recordLess(r, s.resv[worst]) {
		s.resv[worst] = r
	}
	s.stats.DroppedRetention++
}

// Len returns the number of retained records.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pinned) + len(s.tail) + len(s.resv)
}

// Snapshot is a deep, consistent copy of the sink: retained records in
// canonical order plus the totals, loss counters, and bucket states
// needed to continue after a resume. It is plain JSON-encodable data.
type Snapshot struct {
	Stats   Stats             `json:"stats"`
	Totals  map[string]uint64 `json:"totals,omitempty"`
	Buckets map[string]bucket `json:"buckets,omitempty"`
	Records []Record          `json:"records"`
}

// Snapshot freezes the sink. The copy shares nothing with the live sink.
func (s *Sink) Snapshot() *Snapshot {
	if s == nil {
		return &Snapshot{Records: []Record{}}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := &Snapshot{
		Stats:   s.stats,
		Records: make([]Record, 0, len(s.pinned)+len(s.tail)+len(s.resv)),
	}
	if len(s.totals) > 0 {
		out.Totals = make(map[string]uint64, len(s.totals))
		for k, v := range s.totals {
			out.Totals[k] = v
		}
	}
	if len(s.buckets) > 0 {
		out.Buckets = make(map[string]bucket, len(s.buckets))
		for k, b := range s.buckets {
			out.Buckets[k] = *b
		}
	}
	for _, set := range [][]Record{s.pinned, s.tail, s.resv} {
		for _, r := range set {
			r.Attrs = append([]trace.Attr(nil), r.Attrs...)
			out.Records = append(out.Records, r)
		}
	}
	sortRecords(out.Records)
	return out
}

// Load restores a snapshot into a fresh sink (the resume half of
// checkpoint/resume). Retention membership is recomputed from the
// retained set — it is a pure function of it — so retention after the
// resume proceeds exactly as it would have in the uninterrupted run.
// Load panics if the sink has already emitted: resuming into a used sink
// would fold two runs' budgets together.
func (s *Sink) Load(snap *Snapshot) {
	if s == nil || snap == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stats.Emitted > 0 || len(s.pinned)+len(s.tail)+len(s.resv) > 0 {
		panic("evlog: Load into a used sink")
	}
	s.stats = snap.Stats
	for k, v := range snap.Totals {
		s.totals[k] = v
	}
	for k, b := range snap.Buckets {
		cp := b
		s.buckets[k] = &cp
	}
	var low []Record
	for _, r := range snap.Records {
		r.Attrs = append([]trace.Attr(nil), r.Attrs...)
		if r.Level >= Warn {
			s.pinned = append(s.pinned, r)
		} else {
			low = append(low, r)
		}
	}
	// Largest (AtMs, priority) records form the tail; the rest were
	// reservoir survivors.
	sort.Slice(low, func(i, j int) bool { return s.tailLess(low[j], low[i]) })
	for i, r := range low {
		if i < s.cfg.TailKeep {
			s.tail = append(s.tail, r)
		} else {
			s.resv = append(s.resv, r)
		}
	}
}
