// Package evlog is the third observability pillar: a deterministic
// structured event log beside the obs metric registry (PR 1) and the
// trace recorder (PR 4). Where obs aggregates and trace follows single
// documents, evlog answers "what did the system decide, in order, and
// why" — the narrative the paper's authors had to reconstruct by hand
// from aggregate numbers after their 1 TB run went sideways (PAPER.md
// §5-6).
//
// Everything is deterministic per seed and free of wall-clock reads,
// matching the trace pillar's discipline:
//
//   - timestamps are virtual-clock milliseconds supplied by the caller
//     (the crawler's discrete-event clock, the dataflow's plan-position
//     logical clock);
//   - sampling is hash-based — keep/drop is a pure function of
//     (seed, component, sample key), never a racy counter;
//   - rate limiting is a token bucket refilled by virtual time, for
//     serial emitters (the crawler loop) only;
//   - retention is a pure function of the emitted record multiset
//     (bottom-k by seeded FNV priority, evict-min tails), so two
//     same-seed runs export byte-identical logs even when records are
//     emitted concurrently;
//   - exporters render a canonical record order derived from record
//     content, never from arrival order.
//
// Records at Warn and above bypass sampling and rate limiting: the
// interesting records always land, only chatter is shed.
//
// Attrs reuse trace.Attr, so the attribute vocabulary (and the lintx
// key-hygiene grammar) is shared across pillars, and any record can
// carry a trace ID for cross-pillar correlation.
package evlog

import (
	"fmt"

	"webtextie/internal/obs/trace"
)

// Level is a record severity. The zero value is Debug.
type Level int8

// Severity levels, in increasing order.
const (
	Debug Level = iota
	Info
	Warn
	Error
)

var levelNames = [...]string{"debug", "info", "warn", "error"}

// String returns the lower-case level name.
func (l Level) String() string {
	if l < Debug || l > Error {
		return fmt.Sprintf("level(%d)", int8(l))
	}
	return levelNames[l]
}

// ParseLevel maps a lower-case level name back to its Level.
func ParseLevel(s string) (Level, bool) {
	for i, n := range levelNames {
		if n == s {
			return Level(i), true
		}
	}
	return Debug, false
}

// MarshalJSON renders the level as its quoted name.
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// UnmarshalJSON parses a quoted level name.
func (l *Level) UnmarshalJSON(data []byte) error {
	if len(data) < 2 || data[0] != '"' || data[len(data)-1] != '"' {
		return fmt.Errorf("evlog: bad level %s", data)
	}
	v, ok := ParseLevel(string(data[1 : len(data)-1]))
	if !ok {
		return fmt.Errorf("evlog: unknown level %s", data)
	}
	*l = v
	return nil
}

// Record is one structured log event. Records are plain values; the
// canonical logfmt rendering (see line) doubles as the record identity
// that retention priorities and the export order derive from.
type Record struct {
	AtMs      int64         `json:"at_ms"`
	Level     Level         `json:"level"`
	Component string        `json:"component"`
	Msg       string        `json:"msg"`
	Trace     trace.TraceID `json:"trace,omitempty"`
	Attrs     []trace.Attr  `json:"attrs,omitempty"`
}

// Logger emits records for one component into a Sink. Loggers are cheap
// values; the zero Logger (and any logger from a nil sink) is a valid
// no-op, which is the entire logging-off fast path.
type Logger struct {
	s          *Sink
	component  string
	trace      trace.TraceID
	rate       string // bucket key ("" = unlimited)
	sampledOut bool
}

// Enabled reports whether the logger records anywhere.
func (l Logger) Enabled() bool { return l.s != nil }

// For returns a derived logger stamping every record with the trace ID —
// the cross-pillar correlation hook.
func (l Logger) For(id trace.TraceID) Logger {
	l.trace = id
	return l
}

// Sample keeps 1-in-n emissions for Debug/Info records, decided by a
// pure hash of (seed, component, key) — same-seed runs keep the same
// keys regardless of emission order. Keys are stable per-subject values
// (a URL, a record key), so one subject's records are kept or shed as a
// unit. n <= 1 keeps everything; Warn and Error always pass. Each
// Debug/Info emission through a sampled-out logger counts one sampled
// drop in the sink stats.
func (l Logger) Sample(key string, n int) Logger {
	if l.s == nil || n <= 1 || l.sampledOut {
		return l
	}
	if fnvMix(l.s.cfg.Seed, fnvString(l.component), fnvString(key))%uint64(n) != 0 {
		l.sampledOut = true
	}
	return l
}

// RateLimit attaches the component's token bucket (creating it with the
// given burst capacity and refill rate if absent): Debug/Info records
// spend one token each, the bucket refills perSec tokens per virtual
// second, and an empty bucket sheds the record (counted in the sink
// stats). Buckets are keyed per component and their state rides
// snapshots, so a resumed run continues the same budget. Valid for
// serial emitters only — concurrent hot paths must use Sample, whose
// keep/drop decision does not depend on emission order.
func (l Logger) RateLimit(burst int, perSec float64) Logger {
	if l.s == nil || burst <= 0 || perSec <= 0 {
		return l
	}
	l.s.ensureBucket(l.component, burst, perSec)
	l.rate = l.component
	return l
}

// Debug emits a debug-level record.
func (l Logger) Debug(msg string, atMs int64, attrs ...trace.Attr) {
	l.emit(Debug, msg, atMs, attrs)
}

// Info emits an info-level record.
func (l Logger) Info(msg string, atMs int64, attrs ...trace.Attr) {
	l.emit(Info, msg, atMs, attrs)
}

// Warn emits a warn-level record (never sampled or rate-limited).
func (l Logger) Warn(msg string, atMs int64, attrs ...trace.Attr) {
	l.emit(Warn, msg, atMs, attrs)
}

// Error emits an error-level record (never sampled or rate-limited).
func (l Logger) Error(msg string, atMs int64, attrs ...trace.Attr) {
	l.emit(Error, msg, atMs, attrs)
}

func (l Logger) emit(lv Level, msg string, atMs int64, attrs []trace.Attr) {
	if l.s == nil {
		return
	}
	rate := l.rate
	if lv >= Warn {
		rate = "" // severity bypasses shedding
	} else if l.sampledOut {
		l.s.countSampledDrop()
		return
	}
	l.s.emit(rate, Record{
		AtMs:      atMs,
		Level:     lv,
		Component: l.component,
		Msg:       msg,
		Trace:     l.trace,
		Attrs:     attrs,
	})
}

// FNV-1a constants (the repo's standard deterministic hash; mirrored
// from internal/obs/trace).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// fnvMix folds uint64 words into an FNV-1a hash, little-endian byte
// order, so derived priorities are platform-stable.
func fnvMix(parts ...uint64) uint64 {
	h := uint64(fnvOffset)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xff
			h *= fnvPrime
		}
	}
	return h
}

// fnvString hashes a string with FNV-1a.
func fnvString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// MetricName joins metric name parts with dots — the sanctioned builder
// for computed metric names (mirrors dataflow.MetricName; the lintx
// metricname check allows it and nothing else).
func MetricName(parts ...string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "."
		}
		out += p
	}
	return out
}
