package evlog

import (
	"testing"

	"webtextie/internal/obs/trace"
)

// sinkWith emits n info records from one component at the given times.
func sinkWith(component string, times ...int64) *Sink {
	s := NewSink(DefaultConfig(1))
	l := s.Logger(component)
	for _, at := range times {
		l.Info("unit.event", at)
	}
	return s
}

func TestMergeInterleavesByTime(t *testing.T) {
	a := sinkWith("shard0", 10, 30, 50).Snapshot()
	b := sinkWith("shard1", 20, 40).Snapshot()
	m := Merge(a, b)

	if len(m.Records) != 5 {
		t.Fatalf("merged %d records, want 5", len(m.Records))
	}
	want := []struct {
		at        int64
		component string
	}{{10, "shard0"}, {20, "shard1"}, {30, "shard0"}, {40, "shard1"}, {50, "shard0"}}
	for i, w := range want {
		r := m.Records[i]
		if r.AtMs != w.at || r.Component != w.component {
			t.Errorf("record %d = (%d, %s), want (%d, %s)", i, r.AtMs, r.Component, w.at, w.component)
		}
	}
}

func TestMergeIsOrderIndependent(t *testing.T) {
	a := sinkWith("shard0", 10, 20, 20).Snapshot()
	b := sinkWith("shard1", 20, 15).Snapshot()
	ab, ba := Merge(a, b), Merge(b, a)
	if ab.Logfmt() != ba.Logfmt() {
		t.Error("merge order changed the canonical export")
	}
	abJSON, err := ab.JSON()
	if err != nil {
		t.Fatal(err)
	}
	baJSON, err := ba.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(abJSON) != string(baJSON) {
		t.Error("merge order changed the JSON export")
	}
}

func TestMergeSumsTotalsAndStats(t *testing.T) {
	a := sinkWith("shard0", 10, 20).Snapshot()
	b := sinkWith("shard0", 30).Snapshot()
	b.Stats.DroppedRetention = 4
	m := Merge(a, b)

	if m.Stats.Emitted != a.Stats.Emitted+b.Stats.Emitted {
		t.Errorf("merged Emitted = %d, want %d", m.Stats.Emitted, a.Stats.Emitted+b.Stats.Emitted)
	}
	if m.Stats.DroppedRetention != 4 {
		t.Errorf("merged DroppedRetention = %d, want 4", m.Stats.DroppedRetention)
	}
	for k, v := range a.Totals {
		if m.Totals[k] != v+b.Totals[k] {
			t.Errorf("merged total %q = %d, want %d", k, m.Totals[k], v+b.Totals[k])
		}
	}
}

// TestMergeSingleShardIsIdentity pins the DoP-1 degenerate case: a fleet
// of one shard must export exactly what the shard exported alone.
func TestMergeSingleShardIsIdentity(t *testing.T) {
	a := sinkWith("shard0", 10, 20, 30).Snapshot()
	m := Merge(a)
	if m.Logfmt() != a.Logfmt() {
		t.Error("single-shard merge changed the logfmt export")
	}
	if m.Stats != a.Stats {
		t.Errorf("single-shard merge stats = %+v, want %+v", m.Stats, a.Stats)
	}
}

// TestMergeEmptyShardPillars covers shards that logged nothing: a fresh
// sink's snapshot must be absorbed without disturbing the export,
// wherever it sits in the shard order.
func TestMergeEmptyShardPillars(t *testing.T) {
	empty := NewSink(DefaultConfig(1)).Snapshot()
	if len(empty.Records) != 0 || empty.Stats.Emitted != 0 {
		t.Fatalf("fresh sink snapshot not empty: %+v", empty)
	}
	a := sinkWith("shard0", 10, 30).Snapshot()
	b := sinkWith("shard1", 20).Snapshot()
	want := Merge(a, b).Logfmt()
	for name, m := range map[string]*Snapshot{
		"empty-first":  Merge(empty, a, b),
		"empty-middle": Merge(a, empty, b),
		"empty-last":   Merge(a, b, empty),
	} {
		if m.Logfmt() != want {
			t.Errorf("%s: empty shard pillar changed the merged export", name)
		}
	}
	if allEmpty := Merge(empty, NewSink(DefaultConfig(2)).Snapshot()); len(allEmpty.Records) != 0 {
		t.Errorf("all-empty merge produced records: %+v", allEmpty.Records)
	}
}

// TestMergeFencedShardDegraded models a degraded fleet: a fenced shard
// contributes no snapshot (nil), and the merge must render exactly the
// surviving shards' fleet — the fenced hole is invisible to the export.
func TestMergeFencedShardDegraded(t *testing.T) {
	s0 := sinkWith("shard0", 10, 30).Snapshot()
	s2 := sinkWith("shard2", 20, 40).Snapshot()
	degraded := Merge(s0, nil, s2)
	if degraded.Logfmt() != Merge(s0, s2).Logfmt() {
		t.Error("fenced-shard merge differs from the surviving-shards merge")
	}
	if degraded.Stats.Emitted != s0.Stats.Emitted+s2.Stats.Emitted {
		t.Errorf("degraded Emitted = %d, want %d",
			degraded.Stats.Emitted, s0.Stats.Emitted+s2.Stats.Emitted)
	}
}

func TestMergeDeepCopiesAttrsAndSkipsNil(t *testing.T) {
	s := NewSink(DefaultConfig(1))
	s.Logger("shard0").Info("unit.event", 5, trace.String("k", "orig"))
	a := s.Snapshot()
	m := Merge(nil, a)
	if len(m.Records) != 1 {
		t.Fatalf("merged %d records, want 1", len(m.Records))
	}
	m.Records[0].Attrs[0].Value = "mutated"
	if a.Records[0].Attrs[0].Value == "mutated" {
		t.Error("mutating the merged snapshot reached the input snapshot")
	}
	if empty := Merge(); len(empty.Records) != 0 || empty.Stats.Emitted != 0 {
		t.Errorf("empty merge = %+v, want zero snapshot", empty)
	}
}
