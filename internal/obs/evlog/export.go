package evlog

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Exporters render a Snapshot — never the live sink — so every format
// sees one consistent, canonically ordered view. The canonical logfmt
// line is load-bearing: it is the record identity that retention
// priorities hash and the export order sorts on, so identical record
// multisets always render identical bytes.

// line renders the record's canonical logfmt form:
//
//	at_ms=2900 level=warn component=crawler.fetch msg=fetch.error cause="host down" trace=00ab...
//
// Keys are constant snake_case; values are quoted only when they contain
// logfmt metacharacters. The trace field is omitted when zero.
func (r Record) line() string {
	var b strings.Builder
	b.WriteString("at_ms=")
	b.WriteString(strconv.FormatInt(r.AtMs, 10))
	b.WriteString(" level=")
	b.WriteString(r.Level.String())
	b.WriteString(" component=")
	b.WriteString(logfmtValue(r.Component))
	b.WriteString(" msg=")
	b.WriteString(logfmtValue(r.Msg))
	for _, a := range r.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(logfmtValue(a.Value))
	}
	if r.Trace != 0 {
		b.WriteString(" trace=")
		b.WriteString(r.Trace.String())
	}
	return b.String()
}

// logfmtValue quotes a value when it holds spaces, quotes, equals signs,
// control characters, or is empty.
func logfmtValue(v string) string {
	if v == "" {
		return `""`
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c <= ' ' || c == '"' || c == '=' || c == 0x7f {
			return strconv.Quote(v)
		}
	}
	return v
}

// sortRecords puts records into the canonical export order: virtual time
// first, then the rendered line — both derived from record content, so
// the order is independent of emission interleaving.
func sortRecords(rs []Record) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].AtMs != rs[j].AtMs {
			return rs[i].AtMs < rs[j].AtMs
		}
		return rs[i].line() < rs[j].line()
	})
}

// Filter selects a subset of a snapshot's records. Zero value keeps all.
type Filter struct {
	// Component keeps records whose component contains the substring.
	Component string
	// MinLevel keeps records at or above the level.
	MinLevel Level
	// Msg keeps records whose message contains the substring.
	Msg string
	// Trace keeps records stamped with the trace ID (0 = any).
	Trace uint64
	// Limit caps the number of records (0 = unlimited), applied after
	// the other predicates, keeping the first matches in canonical order.
	Limit int
}

func (f Filter) match(r Record) bool {
	if r.Level < f.MinLevel {
		return false
	}
	if f.Component != "" && !strings.Contains(r.Component, f.Component) {
		return false
	}
	if f.Msg != "" && !strings.Contains(r.Msg, f.Msg) {
		return false
	}
	if f.Trace != 0 && uint64(r.Trace) != f.Trace {
		return false
	}
	return true
}

// Filter returns a shallow-copied snapshot holding only matching
// records. Totals, stats, and buckets pass through unchanged: they
// describe the whole run, not the filtered view.
func (s *Snapshot) Filter(f Filter) *Snapshot {
	out := &Snapshot{Stats: s.Stats, Totals: s.Totals, Buckets: s.Buckets, Records: []Record{}}
	for _, r := range s.Records {
		if !f.match(r) {
			continue
		}
		out.Records = append(out.Records, r)
		if f.Limit > 0 && len(out.Records) >= f.Limit {
			break
		}
	}
	return out
}

// Logfmt renders one canonical line per record — the golden-testable
// machine form, and byte-for-byte the identity retention hashed.
func (s *Snapshot) Logfmt() string {
	var b strings.Builder
	for _, r := range s.Records {
		b.WriteString(r.line())
		b.WriteByte('\n')
	}
	return b.String()
}

// Text renders the human form: aligned records, then per-(level,
// component) totals sorted by key, then the loss counters.
//
//	@2900ms  warn  crawler.fetch fetch.error cause="host down" trace=00ab...
//	total warn crawler.fetch 12
//	stats emitted=99 dropped_sampled=3 dropped_rated=0 dropped_retention=0 pin_dropped=0
func (s *Snapshot) Text() string {
	var b strings.Builder
	for _, r := range s.Records {
		fmt.Fprintf(&b, "@%dms %-5s %s %s", r.AtMs, r.Level, r.Component, r.Msg)
		for _, a := range r.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, logfmtValue(a.Value))
		}
		if r.Trace != 0 {
			fmt.Fprintf(&b, " trace=%s", r.Trace)
		}
		b.WriteByte('\n')
	}
	keys := make([]string, 0, len(s.Totals))
	for k := range s.Totals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "total %s %d\n", k, s.Totals[k])
	}
	if s.Stats != (Stats{}) {
		fmt.Fprintf(&b, "stats emitted=%d dropped_sampled=%d dropped_rated=%d dropped_retention=%d pin_dropped=%d\n",
			s.Stats.Emitted, s.Stats.DroppedSampled, s.Stats.DroppedRated,
			s.Stats.DroppedRetention, s.Stats.PinDropped)
	}
	return b.String()
}

// JSON renders the snapshot as deterministic indented JSON (map keys
// sort under encoding/json).
func (s *Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// LevelCounts tallies emitted records per level from the totals (the
// doctor's coarse health signal). Keys are level names.
func (s *Snapshot) LevelCounts() map[string]uint64 {
	out := map[string]uint64{}
	for k, v := range s.Totals {
		if i := strings.IndexByte(k, ' '); i > 0 {
			out[k[:i]] += v
		}
	}
	return out
}

// ComponentTotal returns the emitted count for one (level, component).
func (s *Snapshot) ComponentTotal(lv Level, component string) uint64 {
	return s.Totals[totalKey(lv, component)]
}
