package evlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"webtextie/internal/obs"
	"webtextie/internal/obs/trace"
)

func TestLevelRoundTrip(t *testing.T) {
	for _, lv := range []Level{Debug, Info, Warn, Error} {
		got, ok := ParseLevel(lv.String())
		if !ok || got != lv {
			t.Errorf("ParseLevel(%q) = %v, %v", lv.String(), got, ok)
		}
		blob, err := json.Marshal(lv)
		if err != nil {
			t.Fatalf("marshal %v: %v", lv, err)
		}
		var back Level
		if err := json.Unmarshal(blob, &back); err != nil || back != lv {
			t.Errorf("level JSON round trip %v -> %s -> %v (%v)", lv, blob, back, err)
		}
	}
	if _, ok := ParseLevel("fatal"); ok {
		t.Error("ParseLevel accepted an unknown level")
	}
	var lv Level
	if err := json.Unmarshal([]byte(`"loud"`), &lv); err == nil {
		t.Error("unmarshal accepted an unknown level")
	}
}

func TestNilAndZeroAreNoOps(t *testing.T) {
	var s *Sink
	lg := s.Logger("nil.sink")
	lg.Info("nothing.happens", 1, trace.String("k", "v"))
	lg.Sample("x", 10).RateLimit(1, 1).Error("still.nothing", 2)
	if s.Len() != 0 {
		t.Error("nil sink retained records")
	}
	if got := s.Snapshot(); len(got.Records) != 0 {
		t.Errorf("nil sink snapshot has %d records", len(got.Records))
	}
	var zero Logger
	if zero.Enabled() {
		t.Error("zero Logger claims to be enabled")
	}
	zero.Warn("noop", 3)
}

func TestEmitRetainAndExport(t *testing.T) {
	s := NewSink(Config{Seed: 1})
	lg := s.Logger("crawler.fetch")
	lg.Info("fetch.ok", 10, trace.Int("bytes", 512))
	lg.For(trace.TraceID(0xabcd)).Warn("fetch.error", 20, trace.String("cause", "host down"))
	lg.Debug("fetch.start", 5)

	snap := s.Snapshot()
	if len(snap.Records) != 3 {
		t.Fatalf("retained %d records, want 3", len(snap.Records))
	}
	// Canonical order is virtual time, not emission order.
	if snap.Records[0].Msg != "fetch.start" || snap.Records[2].Msg != "fetch.error" {
		t.Errorf("canonical order wrong: %q ... %q", snap.Records[0].Msg, snap.Records[2].Msg)
	}
	logfmt := snap.Logfmt()
	wantLine := `at_ms=20 level=warn component=crawler.fetch msg=fetch.error cause="host down" trace=000000000000abcd`
	if !strings.Contains(logfmt, wantLine+"\n") {
		t.Errorf("logfmt missing %q:\n%s", wantLine, logfmt)
	}
	text := snap.Text()
	for _, want := range []string{
		"@10ms info  crawler.fetch fetch.ok bytes=512",
		"total info crawler.fetch 1",
		"total warn crawler.fetch 1",
		"stats emitted=3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text missing %q:\n%s", want, text)
		}
	}
	if got := snap.ComponentTotal(Info, "crawler.fetch"); got != 1 {
		t.Errorf("ComponentTotal = %d, want 1", got)
	}
	if lc := snap.LevelCounts(); lc["debug"] != 1 || lc["info"] != 1 || lc["warn"] != 1 {
		t.Errorf("LevelCounts = %v", lc)
	}
}

func TestMinLevelGate(t *testing.T) {
	s := NewSink(Config{Seed: 1, MinLevel: Warn})
	lg := s.Logger("c.x")
	lg.Debug("shed.debug", 1)
	lg.Info("shed.info", 2)
	lg.Warn("kept.warn", 3)
	snap := s.Snapshot()
	if len(snap.Records) != 1 || snap.Records[0].Msg != "kept.warn" {
		t.Fatalf("MinLevel gate kept %v", snap.Records)
	}
	if snap.Stats.Emitted != 1 {
		t.Errorf("emitted = %d, want 1 (below-level records are not emissions)", snap.Stats.Emitted)
	}
}

func TestSamplingDeterministicAndWarnBypass(t *testing.T) {
	keep := func(seed uint64) []string {
		s := NewSink(Config{Seed: seed})
		lg := s.Logger("crawler.frontier")
		for i := 0; i < 64; i++ {
			key := fmt.Sprintf("http://h%d/p", i)
			lg.Sample(key, 8).Debug("frontier.inject", int64(i), trace.String("url", key))
		}
		var kept []string
		for _, r := range s.Snapshot().Records {
			kept = append(kept, r.Attrs[0].Value)
		}
		return kept
	}
	a, b := keep(7), keep(7)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same-seed sampling diverged:\n%v\n%v", a, b)
	}
	if len(a) == 0 || len(a) == 64 {
		t.Errorf("1-in-8 sampling kept %d of 64", len(a))
	}
	if c := keep(8); fmt.Sprint(a) == fmt.Sprint(c) && len(a) == len(c) {
		// Different seeds picking the identical subset is astronomically
		// unlikely; treat it as a seed not reaching the hash.
		t.Errorf("seed change did not move the sample: %v", a)
	}

	s := NewSink(Config{Seed: 7})
	lg := s.Logger("c.x")
	sampled := lg.Sample("always-out-key-1", 1<<30)
	sampled.Debug("shed.one", 1)
	sampled.Warn("kept.warn", 2)
	snap := s.Snapshot()
	if snap.Stats.DroppedSampled != 1 {
		t.Errorf("dropped_sampled = %d, want 1", snap.Stats.DroppedSampled)
	}
	found := false
	for _, r := range snap.Records {
		if r.Msg == "kept.warn" {
			found = true
		}
	}
	if !found {
		t.Error("Warn did not bypass sampling")
	}
}

func TestRateLimitVirtualClock(t *testing.T) {
	s := NewSink(Config{Seed: 1})
	lg := s.Logger("crawler.cycle").RateLimit(2, 1) // burst 2, 1 token/s
	lg.Info("cycle.done", 0)
	lg.Info("cycle.done", 10)   // bucket empty after this
	lg.Info("cycle.done", 20)   // shed
	lg.Warn("cycle.stall", 30)  // severity bypasses the bucket
	lg.Info("cycle.done", 1015) // ~1 token refilled by 1s of virtual time
	snap := s.Snapshot()
	if snap.Stats.DroppedRated != 1 {
		t.Errorf("dropped_rated = %d, want 1", snap.Stats.DroppedRated)
	}
	if snap.Stats.Emitted != 4 {
		t.Errorf("emitted = %d, want 4", snap.Stats.Emitted)
	}
	if len(snap.Buckets) != 1 {
		t.Errorf("bucket state missing from snapshot: %v", snap.Buckets)
	}
}

// TestRetentionPureFunction feeds the same record multiset in two very
// different orders and demands byte-identical exports: retention must be
// a pure function of the stream, not of arrival order.
func TestRetentionPureFunction(t *testing.T) {
	emit := func(order []int) *Snapshot {
		s := NewSink(Config{Seed: 42, TailKeep: 16, ReservoirKeep: 8, PinKeep: 4})
		lg := s.Logger("dataflow.op")
		for _, i := range order {
			if i%17 == 0 {
				lg.Warn("op.quarantine", int64(i), trace.Int("rec", int64(i)))
			} else {
				lg.Debug("op.emit", int64(i), trace.Int("rec", int64(i)))
			}
		}
		return s.Snapshot()
	}
	n := 400
	fwd := make([]int, n)
	perm := make([]int, n)
	for i := range fwd {
		fwd[i] = i
		perm[i] = (i*193 + 71) % n // 193 is coprime with 400
	}
	a, err := emit(fwd).JSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := emit(perm).JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("retention depends on arrival order:\n%s\n----\n%s", a, b)
	}
	var snap Snapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Records) != 4+16+8 {
		t.Errorf("retained %d records, want pinned 4 + tail 16 + reservoir 8", len(snap.Records))
	}
	if snap.Stats.PinDropped == 0 || snap.Stats.DroppedRetention == 0 {
		t.Errorf("expected retention losses, got %+v", snap.Stats)
	}
}

// TestConcurrentEmissionDeterministic is the -race half of the suite:
// four goroutines hammer the sink, and the export must equal a serial
// emission of the same multiset.
func TestConcurrentEmissionDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, TailKeep: 32, ReservoirKeep: 16, PinKeep: 16}
	serial := NewSink(cfg)
	for w := 0; w < 4; w++ {
		lg := serial.Logger("dataflow.op")
		for i := 0; i < 200; i++ {
			emitOne(lg, w, i)
		}
	}
	conc := NewSink(cfg)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lg := conc.Logger("dataflow.op")
			for i := 0; i < 200; i++ {
				emitOne(lg, w, i)
			}
		}(w)
	}
	wg.Wait()
	a, _ := serial.Snapshot().JSON()
	b, _ := conc.Snapshot().JSON()
	if !bytes.Equal(a, b) {
		t.Error("concurrent emission changed the export")
	}
	if lf := conc.Snapshot().Logfmt(); lf != serial.Snapshot().Logfmt() {
		t.Error("concurrent emission changed the logfmt export")
	}
}

func emitOne(lg Logger, w, i int) {
	key := fmt.Sprintf("w%d/r%d", w, i)
	at := int64(i) // logical clock: same timestamps in any interleaving
	switch {
	case i%31 == 0:
		lg.Error("op.panic", at, trace.String("rec", key))
	case i%13 == 0:
		lg.Warn("op.quarantine", at, trace.String("rec", key))
	default:
		lg.Sample(key, 4).Debug("op.emit", at, trace.String("rec", key))
	}
}

// TestSnapshotLoadResumeIdentity checkpoints a sink mid-stream, resumes
// into a fresh sink, finishes the stream on both, and demands identical
// exports — the sink-level half of the crawler checkpoint guarantee.
func TestSnapshotLoadResumeIdentity(t *testing.T) {
	cfg := Config{Seed: 3, TailKeep: 8, ReservoirKeep: 4, PinKeep: 4}
	feed := func(s *Sink, from, to int) {
		lg := s.Logger("crawler.fetch").RateLimit(4, 10)
		for i := from; i < to; i++ {
			if i%11 == 0 {
				lg.Warn("fetch.error", int64(i*7), trace.Int("attempt", int64(i)))
			} else {
				lg.Info("fetch.ok", int64(i*7), trace.Int("bytes", int64(i)))
			}
		}
	}
	full := NewSink(cfg)
	feed(full, 0, 100)

	first := NewSink(cfg)
	feed(first, 0, 40)
	blob, err := json.Marshal(first.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var mid Snapshot
	if err := json.Unmarshal(blob, &mid); err != nil {
		t.Fatal(err)
	}
	resumed := NewSink(cfg)
	resumed.Load(&mid)
	feed(resumed, 40, 100)

	a, _ := full.Snapshot().JSON()
	b, _ := resumed.Snapshot().JSON()
	if !bytes.Equal(a, b) {
		t.Errorf("resumed export differs from uninterrupted:\n%s\n----\n%s", a, b)
	}
}

func TestLoadIntoUsedSinkPanics(t *testing.T) {
	s := NewSink(Config{Seed: 1})
	s.Logger("c.x").Info("m.sg", 1)
	defer func() {
		if recover() == nil {
			t.Error("Load into a used sink did not panic")
		}
	}()
	s.Load(&Snapshot{})
}

func TestFilter(t *testing.T) {
	s := NewSink(Config{Seed: 1})
	a := s.Logger("crawler.fetch")
	b := s.Logger("dataflow.op")
	a.Info("fetch.ok", 1)
	a.For(trace.TraceID(5)).Warn("fetch.error", 2)
	b.Debug("op.emit", 3)
	b.Error("op.panic", 4)
	snap := s.Snapshot()

	if got := snap.Filter(Filter{Component: "crawler"}); len(got.Records) != 2 {
		t.Errorf("component filter kept %d", len(got.Records))
	}
	if got := snap.Filter(Filter{MinLevel: Warn}); len(got.Records) != 2 {
		t.Errorf("level filter kept %d", len(got.Records))
	}
	if got := snap.Filter(Filter{Msg: "panic"}); len(got.Records) != 1 {
		t.Errorf("msg filter kept %d", len(got.Records))
	}
	if got := snap.Filter(Filter{Trace: 5}); len(got.Records) != 1 || got.Records[0].Msg != "fetch.error" {
		t.Errorf("trace filter kept %v", got.Records)
	}
	if got := snap.Filter(Filter{Limit: 3}); len(got.Records) != 3 {
		t.Errorf("limit filter kept %d", len(got.Records))
	}
	if got := snap.Filter(Filter{}); len(got.Records) != 4 {
		t.Errorf("zero filter kept %d", len(got.Records))
	}
}

func TestDerivedCounters(t *testing.T) {
	reg := obs.New()
	s := NewSink(Config{Seed: 1}).WithMetrics(reg)
	lg := s.Logger("crawler.fetch")
	lg.Info("fetch.ok", 1)
	lg.Info("fetch.ok", 2)
	lg.Warn("fetch.error", 3)
	if got := reg.Counter("evlog.records.crawler.fetch.info").Value(); got != 2 {
		t.Errorf("derived info counter = %d, want 2", got)
	}
	if got := reg.Counter("evlog.records.crawler.fetch.warn").Value(); got != 1 {
		t.Errorf("derived warn counter = %d, want 1", got)
	}
}
