package series

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"webtextie/internal/obs"
)

// feed observes a deterministic ramp into the named series.
func feed(r *Recorder, name string, n int) {
	for i := 0; i < n; i++ {
		r.Observe(name, int64(i*10), float64(i))
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Observe("x.y", 1, 2)
	r.Sample(1, obs.Snapshot{Counters: map[string]int64{"a.b": 1}})
	r.Load(&Snapshot{})
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil recorder snapshot = %v, want nil", s)
	}
	if c := r.Config(); c != (Config{}) {
		t.Fatalf("nil recorder config = %+v, want zero", c)
	}
}

func TestConfigNormalization(t *testing.T) {
	r := New(Config{})
	if got, want := r.Config(), DefaultConfig(); got != want {
		t.Fatalf("zero config normalized to %+v, want %+v", got, want)
	}
	r = New(Config{RawCap: 4, RollupEvery: 2, Tiers: 1, TierCap: 3})
	if got := r.Config(); got.RawCap != 4 || got.RollupEvery != 2 || got.Tiers != 1 || got.TierCap != 3 {
		t.Fatalf("explicit config mangled: %+v", got)
	}
}

func TestRawRingEvictsOldest(t *testing.T) {
	r := New(Config{RawCap: 4, RollupEvery: 2, Tiers: 1, TierCap: 8})
	feed(r, "m.x", 6)
	sd := r.Snapshot().Get("m.x")
	if sd == nil {
		t.Fatal("series m.x missing from snapshot")
	}
	if sd.Total != 6 {
		t.Fatalf("total = %d, want 6", sd.Total)
	}
	want := []Point{{20, 2}, {30, 3}, {40, 4}, {50, 5}}
	if len(sd.Points) != len(want) {
		t.Fatalf("points = %v, want %v", sd.Points, want)
	}
	for i, p := range want {
		if sd.Points[i] != p {
			t.Fatalf("points[%d] = %v, want %v", i, sd.Points[i], p)
		}
	}
}

func TestRollupCascade(t *testing.T) {
	r := New(Config{RawCap: 64, RollupEvery: 2, Tiers: 2, TierCap: 8})
	feed(r, "m.x", 5) // values 0..4 at 0,10,..,40
	sd := r.Snapshot().Get("m.x")
	if len(sd.Tiers) != 2 {
		t.Fatalf("tiers = %d, want 2", len(sd.Tiers))
	}
	t0 := sd.Tiers[0]
	if len(t0.Rollups) != 2 {
		t.Fatalf("tier0 rollups = %v, want 2 entries", t0.Rollups)
	}
	if got, want := t0.Rollups[0], (Rollup{FromMs: 0, ToMs: 10, Count: 2, First: 0, Last: 1, Min: 0, Max: 1, Sum: 1}); got != want {
		t.Fatalf("tier0 rollup[0] = %+v, want %+v", got, want)
	}
	if t0.Acc == nil || t0.Acc.Count != 1 || t0.Acc.First != 4 || t0.AccN != 1 {
		t.Fatalf("tier0 acc = %+v accN=%d, want partial single-sample acc", t0.Acc, t0.AccN)
	}
	t1 := sd.Tiers[1]
	if len(t1.Rollups) != 1 {
		t.Fatalf("tier1 rollups = %v, want 1 entry", t1.Rollups)
	}
	if got, want := t1.Rollups[0], (Rollup{FromMs: 0, ToMs: 30, Count: 4, First: 0, Last: 3, Min: 0, Max: 3, Sum: 6}); got != want {
		t.Fatalf("tier1 rollup[0] = %+v, want %+v", got, want)
	}
}

// TestRollupsIndependentOfRawEviction pins the determinism argument: the
// rollup cascade is a pure function of the sample stream, so a tiny raw
// ring (heavy eviction) and a huge one retain identical tiers.
func TestRollupsIndependentOfRawEviction(t *testing.T) {
	small := New(Config{RawCap: 2, RollupEvery: 4, Tiers: 2, TierCap: 16})
	big := New(Config{RawCap: 4096, RollupEvery: 4, Tiers: 2, TierCap: 16})
	for _, r := range []*Recorder{small, big} {
		for i := 0; i < 300; i++ {
			r.Observe("m.x", int64(i*7), math.Sin(float64(i)))
		}
	}
	a, b := small.Snapshot().Get("m.x"), big.Snapshot().Get("m.x")
	aj, _ := json.Marshal(a.Tiers)
	bj, _ := json.Marshal(b.Tiers)
	if string(aj) != string(bj) {
		t.Fatalf("rollup tiers depend on raw ring size:\nsmall: %s\nbig:   %s", aj, bj)
	}
}

func TestSampleOrderAndCollision(t *testing.T) {
	r := New(DefaultConfig())
	r.Sample(100, obs.Snapshot{
		Counters: map[string]int64{"b.count": 2, "a.count": 1, "both.kinds": 7},
		Gauges:   map[string]int64{"c.gauge": 3, "both.kinds": 9},
	})
	s := r.Snapshot()
	var names []string
	for _, sd := range s.Series {
		names = append(names, sd.Name)
	}
	if got, want := strings.Join(names, " "), "a.count b.count both.kinds c.gauge"; got != want {
		t.Fatalf("series names = %q, want %q", got, want)
	}
	if p, _ := s.Get("both.kinds").Last(); p.V != 7 {
		t.Fatalf("counter/gauge collision resolved to %v, want the counter (7)", p.V)
	}
}

func TestSnapshotLoadRoundTripContinuesStream(t *testing.T) {
	cfg := Config{RawCap: 8, RollupEvery: 3, Tiers: 2, TierCap: 4}
	full := New(cfg)
	cut := New(cfg)
	for i := 0; i < 100; i++ {
		full.Observe("m.x", int64(i), float64(i%13))
		if i < 41 {
			cut.Observe("m.x", int64(i), float64(i%13))
		}
	}
	// Resume: checkpoint at sample 41, load into a fresh recorder, feed
	// the remainder. Exports must be byte-identical to uninterrupted.
	resumed := New(DefaultConfig()) // deliberately different config: Load adopts the snapshot's
	resumed.Load(cut.Snapshot())
	for i := 41; i < 100; i++ {
		resumed.Observe("m.x", int64(i), float64(i%13))
	}
	if got, want := resumed.Snapshot().CSV(), full.Snapshot().CSV(); got != want {
		t.Fatalf("resumed CSV diverges from uninterrupted:\nresumed:\n%s\nfull:\n%s", got, want)
	}
	gj, _ := resumed.Snapshot().JSON()
	wj, _ := full.Snapshot().JSON()
	if string(gj) != string(wj) {
		t.Fatalf("resumed JSON diverges from uninterrupted")
	}
}

func TestTwoRunByteIdentity(t *testing.T) {
	run := func() string {
		r := New(Config{RawCap: 16, RollupEvery: 4, Tiers: 2, TierCap: 8})
		for i := 0; i < 123; i++ {
			r.Sample(int64(i*25), obs.Snapshot{
				Counters: map[string]int64{"fetch.ok": int64(i * 2), "classify.relevant": int64(i / 3)},
				Gauges:   map[string]int64{"frontier.pending": int64(1000 - i*7)},
			})
		}
		s := r.Snapshot()
		j, err := s.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return s.CSV() + string(j) + s.Text()
	}
	if a, b := run(), run(); a != b {
		t.Fatal("two identical sample streams rendered different exports")
	}
}

func TestQueries(t *testing.T) {
	pts := []Point{{0, 10}, {1000, 20}, {2000, 30}, {3000, 40}}
	if got := Delta(pts); got != 30 {
		t.Errorf("Delta = %v, want 30", got)
	}
	if got := Rate(pts); got != 10 {
		t.Errorf("Rate = %v, want 10/s", got)
	}
	if got := Slope(pts); math.Abs(got-10) > 1e-9 {
		t.Errorf("Slope = %v, want 10/s", got)
	}
	if got := MovingAvg(pts, 2); got != 35 {
		t.Errorf("MovingAvg(2) = %v, want 35", got)
	}
	if got := MovingAvg(pts, 99); got != 25 {
		t.Errorf("MovingAvg(99) = %v, want 25", got)
	}
	if got := Window(pts, 1000, 2000); len(got) != 2 || got[0].AtMs != 1000 {
		t.Errorf("Window = %v, want the middle two points", got)
	}
	// Degenerate windows.
	if Delta(nil) != 0 || Rate(nil) != 0 || Slope(nil) != 0 || MovingAvg(nil, 3) != 0 {
		t.Error("empty-window queries should all be 0")
	}
	same := []Point{{5, 1}, {5, 2}}
	if Rate(same) != 0 || Slope(same) != 0 {
		t.Error("zero-time-span queries should be 0")
	}
}

func TestCSVShape(t *testing.T) {
	r := New(Config{RawCap: 4, RollupEvery: 2, Tiers: 1, TierCap: 4})
	feed(r, "m.x", 3)
	csv := r.Snapshot().CSV()
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if lines[0] != "series,kind,tier,from_ms,to_ms,count,first,last,min,max,sum" {
		t.Fatalf("csv header = %q", lines[0])
	}
	want := []string{
		"m.x,raw,-1,0,0,1,0,0,0,0,0",
		"m.x,raw,-1,10,10,1,1,1,1,1,1",
		"m.x,raw,-1,20,20,1,2,2,2,2,2",
		"m.x,rollup,0,0,10,2,0,1,0,1,1",
		"m.x,acc,0,20,20,1,2,2,2,2,2",
	}
	if got := strings.Join(lines[1:], "\n"); got != strings.Join(want, "\n") {
		t.Fatalf("csv rows:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil, 8); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	up := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}, {7, 7}}
	if got := Sparkline(up, 8); got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q, want full ladder", got)
	}
	flat := []Point{{0, 5}, {1, 5}, {2, 5}}
	if got := Sparkline(flat, 8); got != "▅▅▅" {
		t.Errorf("flat sparkline = %q, want mid-level glyphs", got)
	}
	// Downsampling: more points than width still renders width glyphs.
	var long []Point
	for i := 0; i < 100; i++ {
		long = append(long, Point{int64(i), float64(i)})
	}
	if got := Sparkline(long, 8); len([]rune(got)) != 8 {
		t.Errorf("downsampled sparkline %q has %d glyphs, want 8", got, len([]rune(got)))
	}
}

func TestGetAndFilter(t *testing.T) {
	r := New(DefaultConfig())
	feed(r, "crawler.fetch.ok", 2)
	feed(r, "crawler.fetch.err", 2)
	feed(r, "fleet.rounds", 2)
	s := r.Snapshot()
	if s.Get("crawler.fetch.ok") == nil || s.Get("nope") != nil {
		t.Fatal("Get lookup broken")
	}
	if got := len(s.Filter("fetch")); got != 2 {
		t.Fatalf("Filter(fetch) = %d series, want 2", got)
	}
	if got := len(s.Filter("")); got != 3 {
		t.Fatalf("Filter(\"\") = %d series, want all 3", got)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := New(DefaultConfig())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("worker.%d.ops", g)
			for i := 0; i < 500; i++ {
				r.Observe(name, int64(i), float64(i))
				if i%100 == 0 {
					r.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	if len(s.Series) != 8 {
		t.Fatalf("series count = %d, want 8", len(s.Series))
	}
	for _, sd := range s.Series {
		if sd.Total != 500 {
			t.Fatalf("%s total = %d, want 500", sd.Name, sd.Total)
		}
	}
}
