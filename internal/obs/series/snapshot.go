package series

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a frozen Recorder: retention config plus every series
// sorted by name. It is the unit that rides checkpoints, merges into
// fleet results, and renders the exports.
type Snapshot struct {
	Config Config        `json:"config"`
	Series []*SeriesData `json:"series,omitempty"`
}

// SeriesData is one metric's frozen history: the raw ring oldest-first
// plus each rollup tier's finished rollups and partial accumulator.
type SeriesData struct {
	Name   string     `json:"name"`
	Total  int64      `json:"total"`
	Points []Point    `json:"points,omitempty"`
	Tiers  []TierData `json:"tiers,omitempty"`
}

// TierData is one frozen rollup tier. Acc is the partial accumulator
// (nil when empty); AccN counts the children folded into it so a Load
// knows when the next flush is due; Evicted counts rollups the bounded
// ring has dropped.
type TierData struct {
	Acc     *Rollup  `json:"acc,omitempty"`
	AccN    int      `json:"acc_n,omitempty"`
	Rollups []Rollup `json:"rollups,omitempty"`
	Evicted int64    `json:"evicted,omitempty"`
}

// Get returns the named series, or nil when absent.
func (s *Snapshot) Get(name string) *SeriesData {
	if s == nil {
		return nil
	}
	i := sort.Search(len(s.Series), func(i int) bool { return s.Series[i].Name >= name })
	if i < len(s.Series) && s.Series[i].Name == name {
		return s.Series[i]
	}
	return nil
}

// Filter returns the series whose names contain substr (all of them for
// the empty string), preserving name order.
func (s *Snapshot) Filter(substr string) []*SeriesData {
	if s == nil {
		return nil
	}
	out := make([]*SeriesData, 0, len(s.Series))
	for _, sd := range s.Series {
		if strings.Contains(sd.Name, substr) {
			out = append(out, sd)
		}
	}
	return out
}

// Narrow returns a snapshot view holding only the series whose names
// contain substr (the snapshot itself for the empty string). Series data
// is shared with the receiver, not copied.
func (s *Snapshot) Narrow(substr string) *Snapshot {
	if s == nil || substr == "" {
		return s
	}
	return &Snapshot{Config: s.Config, Series: s.Filter(substr)}
}

// Windowed queries. The package-level forms work over any point window
// (the doctor's time-aware rules slice their own early/late windows);
// the SeriesData methods apply them to the full retained raw ring.

// Delta returns last minus first value of the window (0 with fewer than
// two points).
func Delta(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	return pts[len(pts)-1].V - pts[0].V
}

// Rate returns the window's average change per second of virtual time
// (0 with fewer than two points or a non-positive time span).
func Rate(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	dt := pts[len(pts)-1].AtMs - pts[0].AtMs
	if dt <= 0 {
		return 0
	}
	return Delta(pts) * 1000 / float64(dt)
}

// MovingAvg returns the mean of the last n values (all of them when the
// window is shorter; 0 when empty or n <= 0).
func MovingAvg(pts []Point, n int) float64 {
	if n <= 0 || len(pts) == 0 {
		return 0
	}
	if n > len(pts) {
		n = len(pts)
	}
	var sum float64
	for _, p := range pts[len(pts)-n:] {
		sum += p.V
	}
	return sum / float64(n)
}

// Slope returns the least-squares trend of the window in value units per
// second of virtual time (0 with fewer than two points or zero time
// variance).
func Slope(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	// Center timestamps on the window start to keep the sums small.
	t0 := pts[0].AtMs
	var sumT, sumV, sumTT, sumTV float64
	for _, p := range pts {
		t := float64(p.AtMs - t0)
		sumT += t
		sumV += p.V
		sumTT += t * t
		sumTV += t * p.V
	}
	n := float64(len(pts))
	den := n*sumTT - sumT*sumT
	if den == 0 {
		return 0
	}
	return (n*sumTV - sumT*sumV) / den * 1000
}

// Window returns the points with fromMs <= AtMs <= toMs.
func Window(pts []Point, fromMs, toMs int64) []Point {
	lo := sort.Search(len(pts), func(i int) bool { return pts[i].AtMs >= fromMs })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i].AtMs > toMs })
	if lo >= hi {
		return nil
	}
	return pts[lo:hi]
}

// Delta applies Delta to the retained raw window.
func (sd *SeriesData) Delta() float64 { return Delta(sd.Points) }

// Rate applies Rate to the retained raw window.
func (sd *SeriesData) Rate() float64 { return Rate(sd.Points) }

// MovingAvg applies MovingAvg to the retained raw window.
func (sd *SeriesData) MovingAvg(n int) float64 { return MovingAvg(sd.Points, n) }

// Slope applies Slope to the retained raw window.
func (sd *SeriesData) Slope() float64 { return Slope(sd.Points) }

// Last returns the newest retained point.
func (sd *SeriesData) Last() (Point, bool) {
	if len(sd.Points) == 0 {
		return Point{}, false
	}
	return sd.Points[len(sd.Points)-1], true
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CSV renders the snapshot as a deterministic table, one row per raw
// point, finished rollup, or partial accumulator:
//
//	series,kind,tier,from_ms,to_ms,count,first,last,min,max,sum
//
// Raw points are degenerate rollup rows (kind raw, tier -1, from = to,
// count 1, every value column the sample). Rows sort by series name,
// then raw before rollups, then tier, then time — byte-identical for
// identical sample streams.
func (s *Snapshot) CSV() string {
	var b strings.Builder
	b.WriteString("series,kind,tier,from_ms,to_ms,count,first,last,min,max,sum\n")
	if s == nil {
		return b.String()
	}
	row := func(name, kind string, tier int, r Rollup) {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%s,%s,%s,%s,%s\n",
			name, kind, tier, r.FromMs, r.ToMs, r.Count,
			fmtFloat(r.First), fmtFloat(r.Last), fmtFloat(r.Min), fmtFloat(r.Max), fmtFloat(r.Sum))
	}
	for _, sd := range s.Series {
		for _, p := range sd.Points {
			row(sd.Name, "raw", -1, Rollup{FromMs: p.AtMs, ToMs: p.AtMs, Count: 1, First: p.V, Last: p.V, Min: p.V, Max: p.V, Sum: p.V})
		}
		for tier, td := range sd.Tiers {
			for _, r := range td.Rollups {
				row(sd.Name, "rollup", tier, r)
			}
			if td.Acc != nil {
				row(sd.Name, "acc", tier, *td.Acc)
			}
		}
	}
	return b.String()
}

// JSON renders the snapshot as deterministic indented JSON.
func (s *Snapshot) JSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.MarshalIndent(s, "", "  ")
}

// Text renders a one-line summary per series — retained/total sample
// counts, last value, window delta/rate/slope, and a sparkline of the
// retained window:
//
//	crawler.fetch.ok n=12 total=12 last=118 delta=108 rate=3.2/s slope=0.4/s ▁▂▃▅▆█
func (s *Snapshot) Text() string { return s.TextWidth(32) }

// TextWidth renders Text with sparklines up to width glyphs wide.
func (s *Snapshot) TextWidth(width int) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, sd := range s.Series {
		last, _ := sd.Last()
		fmt.Fprintf(&b, "%s n=%d total=%d last=%s delta=%s rate=%s/s slope=%s/s %s\n",
			sd.Name, len(sd.Points), sd.Total, fmtFloat(last.V),
			fmtFloat(sd.Delta()), fmtFloat(sd.Rate()), fmtFloat(sd.Slope()),
			Sparkline(sd.Points, width))
	}
	return b.String()
}

// sparkGlyphs are the eight block-element levels, lowest to highest.
var sparkGlyphs = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the window as width block glyphs, bucket-averaging
// when the window is longer than width. A flat window renders at the
// mid level; an empty one renders empty.
func Sparkline(pts []Point, width int) string {
	if len(pts) == 0 || width <= 0 {
		return ""
	}
	if width > len(pts) {
		width = len(pts)
	}
	// Average the points into width buckets (last bucket may be short).
	vals := make([]float64, width)
	for i := 0; i < width; i++ {
		lo, hi := i*len(pts)/width, (i+1)*len(pts)/width
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for _, p := range pts[lo:hi] {
			sum += p.V
		}
		vals[i] = sum / float64(hi-lo)
	}
	min, max := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		level := len(sparkGlyphs) / 2
		if max > min {
			level = int((v - min) / (max - min) * float64(len(sparkGlyphs)-1))
			if level >= len(sparkGlyphs) {
				level = len(sparkGlyphs) - 1
			}
		}
		b.WriteRune(sparkGlyphs[level])
	}
	return b.String()
}
