// Package series is the fourth observability pillar: deterministic
// virtual-clock time series over the metric registry. A Recorder
// periodically samples registry counters and gauges (per crawl cycle in
// the plain crawler, per BSP round at the fleet barrier in the sharded
// one) and retains each metric's history in a bounded raw ring plus
// tiered downsampling rollups, so "harvest rate over crawl progress" —
// the paper's temporal pitfall analysis — becomes a first-class,
// byte-identical export instead of an end-of-run total.
//
// Everything is a pure function of the sample stream: timestamps come
// from the deterministic virtual clocks, ring eviction never feeds the
// rollup cascade (tiers accumulate from the stream itself, not from
// evicted entries), and snapshots capture the full internal state so a
// checkpoint/resume cut replays to byte-identical exports.
package series

import (
	"sort"
	"sync"

	"webtextie/internal/obs"
)

// Config sizes a Recorder's per-series retention. The zero value of any
// field falls back to DefaultConfig.
type Config struct {
	// RawCap bounds the raw sample ring (newest RawCap points kept).
	RawCap int `json:"raw_cap"`
	// RollupEvery is the downsampling fan-in: every RollupEvery samples
	// fold into one tier-0 rollup, every RollupEvery tier-0 rollups fold
	// into one tier-1 rollup, and so on.
	RollupEvery int `json:"rollup_every"`
	// Tiers is the number of rollup tiers kept above the raw ring.
	Tiers int `json:"tiers"`
	// TierCap bounds each tier's rollup ring.
	TierCap int `json:"tier_cap"`
}

// DefaultConfig is the retention shape the CLIs use: 512 raw samples and
// two rollup tiers of 256 entries folding 8-to-1, which covers ~33k
// samples of history in bounded memory.
func DefaultConfig() Config {
	return Config{RawCap: 512, RollupEvery: 8, Tiers: 2, TierCap: 256}
}

// normalized fills zero or out-of-range fields from DefaultConfig.
func (c Config) normalized() Config {
	d := DefaultConfig()
	if c.RawCap <= 0 {
		c.RawCap = d.RawCap
	}
	if c.RollupEvery <= 1 {
		c.RollupEvery = d.RollupEvery
	}
	if c.Tiers <= 0 {
		c.Tiers = d.Tiers
	}
	if c.TierCap <= 0 {
		c.TierCap = d.TierCap
	}
	return c
}

// Point is one sample on the virtual clock.
type Point struct {
	AtMs int64   `json:"at_ms"`
	V    float64 `json:"v"`
}

// Rollup is the downsampled summary of a run of consecutive samples (or,
// in higher tiers, of consecutive lower-tier rollups).
type Rollup struct {
	FromMs int64   `json:"from_ms"`
	ToMs   int64   `json:"to_ms"`
	Count  int64   `json:"count"`
	First  float64 `json:"first"`
	Last   float64 `json:"last"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Sum    float64 `json:"sum"`
}

// addPoint folds one sample into the accumulator.
func (r *Rollup) addPoint(p Point) {
	if r.Count == 0 {
		*r = Rollup{FromMs: p.AtMs, ToMs: p.AtMs, Count: 1, First: p.V, Last: p.V, Min: p.V, Max: p.V, Sum: p.V}
		return
	}
	r.Count++
	r.ToMs = p.AtMs
	r.Last = p.V
	if p.V < r.Min {
		r.Min = p.V
	}
	if p.V > r.Max {
		r.Max = p.V
	}
	r.Sum += p.V
}

// addRollup folds a finished lower-tier rollup into the accumulator.
func (r *Rollup) addRollup(o Rollup) {
	if r.Count == 0 {
		*r = o
		return
	}
	r.Count += o.Count
	r.ToMs = o.ToMs
	r.Last = o.Last
	if o.Min < r.Min {
		r.Min = o.Min
	}
	if o.Max > r.Max {
		r.Max = o.Max
	}
	r.Sum += o.Sum
}

// tierState is one rollup tier: a partial accumulator plus a bounded
// ring of finished rollups. accN counts the children (samples for tier
// 0, lower-tier rollups above) folded into acc so far — kept separately
// because acc.Count in higher tiers counts raw samples, not children.
type tierState struct {
	acc     Rollup
	accN    int
	ring    []Rollup
	head    int
	n       int
	evicted int64
}

func (t *tierState) push(cap int, r Rollup) {
	if t.ring == nil {
		t.ring = make([]Rollup, cap)
	}
	if t.n < len(t.ring) {
		t.ring[(t.head+t.n)%len(t.ring)] = r
		t.n++
		return
	}
	t.ring[t.head] = r
	t.head = (t.head + 1) % len(t.ring)
	t.evicted++
}

// rollups returns the live ring entries oldest-first.
func (t *tierState) rollups() []Rollup {
	if t.n == 0 {
		return nil
	}
	out := make([]Rollup, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.ring[(t.head+i)%len(t.ring)]
	}
	return out
}

// seriesState is one metric's retained history.
type seriesState struct {
	total int64 // samples ever observed, including evicted
	raw   []Point
	head  int
	n     int
	tiers []tierState
}

func newSeriesState(cfg Config) *seriesState {
	return &seriesState{raw: make([]Point, cfg.RawCap), tiers: make([]tierState, cfg.Tiers)}
}

func (st *seriesState) add(cfg Config, p Point) {
	st.total++
	if st.n < len(st.raw) {
		st.raw[(st.head+st.n)%len(st.raw)] = p
		st.n++
	} else {
		st.raw[st.head] = p
		st.head = (st.head + 1) % len(st.raw)
	}
	if len(st.tiers) == 0 {
		return
	}
	// The cascade feeds from the sample stream, never from ring
	// eviction: tier 0's accumulator sees every sample, tier i+1's sees
	// every tier-i flush. That makes every tier a pure function of the
	// stream, which is what lets a resumed recorder replay to the exact
	// state of an uninterrupted one.
	t0 := &st.tiers[0]
	t0.acc.addPoint(p)
	t0.accN++
	for i := range st.tiers {
		t := &st.tiers[i]
		if t.accN < cfg.RollupEvery {
			break
		}
		flushed := t.acc
		t.push(cfg.TierCap, flushed)
		t.acc, t.accN = Rollup{}, 0
		if i+1 < len(st.tiers) {
			next := &st.tiers[i+1]
			next.acc.addRollup(flushed)
			next.accN++
		}
	}
}

// points returns the live raw ring oldest-first.
func (st *seriesState) points() []Point {
	if st.n == 0 {
		return nil
	}
	out := make([]Point, st.n)
	for i := 0; i < st.n; i++ {
		out[i] = st.raw[(st.head+i)%len(st.raw)]
	}
	return out
}

// Recorder accumulates time series. All methods are safe on a nil
// receiver (no-ops / zero values), so callers gate sampling with a
// single nil check, and safe for concurrent use — though the crawl
// integration only ever samples from one goroutine (per cycle, or
// post-barrier at the fleet round boundary).
type Recorder struct {
	mu     sync.Mutex
	cfg    Config
	series map[string]*seriesState
}

// New returns an empty Recorder with cfg (zero fields defaulted).
func New(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.normalized(), series: map[string]*seriesState{}}
}

// Config returns the recorder's normalized retention config.
func (r *Recorder) Config() Config {
	if r == nil {
		return Config{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

// Observe appends one sample to the named series. Names follow the same
// constant lower-dotted grammar as metric names (the lintx seriesname
// check enforces this at call sites outside internal/obs).
func (r *Recorder) Observe(name string, atMs int64, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.observe(name, atMs, v)
}

func (r *Recorder) observe(name string, atMs int64, v float64) {
	st := r.series[name]
	if st == nil {
		st = newSeriesState(r.cfg)
		r.series[name] = st
	}
	st.add(r.cfg, Point{AtMs: atMs, V: v})
}

// Sample appends one sample per counter and gauge in the registry
// snapshot, all stamped atMs. Counters are folded first (sorted by
// name), then gauges (sorted by name); a gauge whose name collides with
// a counter is skipped, so each series stays single-kinded. Histograms
// are not sampled — their count/sum already surface as derived series
// where callers need them.
func (r *Recorder) Sample(atMs int64, snap obs.Snapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.observe(n, atMs, float64(snap.Counters[n]))
	}
	names = names[:0]
	for n := range snap.Gauges {
		if _, dup := snap.Counters[n]; dup {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r.observe(n, atMs, float64(snap.Gauges[n]))
	}
}

// Snapshot freezes the recorder: every series sorted by name, raw rings
// and rollup tiers unrolled oldest-first, partial accumulators included.
// The snapshot is a deep copy and captures enough state that Load into a
// fresh recorder continues the streams exactly where they stopped.
func (r *Recorder) Snapshot() *Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := &Snapshot{Config: r.cfg, Series: make([]*SeriesData, 0, len(r.series))}
	names := make([]string, 0, len(r.series))
	for n := range r.series {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		st := r.series[name]
		sd := &SeriesData{Name: name, Total: st.total, Points: st.points()}
		if len(st.tiers) > 0 {
			sd.Tiers = make([]TierData, len(st.tiers))
			for i := range st.tiers {
				t := &st.tiers[i]
				td := TierData{AccN: t.accN, Rollups: t.rollups(), Evicted: t.evicted}
				if t.accN > 0 {
					acc := t.acc
					td.Acc = &acc
				}
				sd.Tiers[i] = td
			}
		}
		out.Series = append(out.Series, sd)
	}
	return out
}

// Load replaces the recorder's state with the snapshot's — the restore
// half of checkpoint/resume. The snapshot's config is adopted (so a
// resumed run keeps the retention shape it was checkpointed with), and
// subsequent samples behave exactly as if the recorder had never been
// restarted.
func (r *Recorder) Load(s *Snapshot) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cfg = s.Config.normalized()
	r.series = make(map[string]*seriesState, len(s.Series))
	for _, sd := range s.Series {
		if sd == nil {
			continue
		}
		st := newSeriesState(r.cfg)
		st.total = sd.Total
		for _, p := range sd.Points {
			if st.n < len(st.raw) {
				st.raw[st.n] = p
				st.n++
			} else {
				st.raw[st.head] = p
				st.head = (st.head + 1) % len(st.raw)
			}
		}
		for i := range st.tiers {
			if i >= len(sd.Tiers) {
				break
			}
			td := sd.Tiers[i]
			t := &st.tiers[i]
			t.accN = td.AccN
			if td.Acc != nil {
				t.acc = *td.Acc
			}
			for _, ru := range td.Rollups {
				t.push(r.cfg.TierCap, ru)
			}
			t.evicted = td.Evicted
		}
		r.series[sd.Name] = st
	}
}
