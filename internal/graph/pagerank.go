// Package graph provides the link-graph analytics of §4.1: PageRank over
// the crawled LinkDB aggregated to host ("domain") level, producing the
// paper's Table 2 (top-30 domains by page rank), plus out-link locality
// statistics supporting the "biomedical sites are only weakly linked"
// observation (§2.2).
package graph

import (
	"math"
	"sort"

	"webtextie/internal/crawldb"
	"webtextie/internal/synthweb"
)

// HostGraph is a directed multigraph between hosts.
type HostGraph struct {
	// Nodes is the sorted list of host names.
	Nodes []string
	index map[string]int
	// out[i] lists target node indexes (with multiplicity).
	out [][]int
}

// FromLinkDB aggregates a page-level LinkDB to host level. Self-loops
// (intra-host links) are dropped: PageRank over domains concerns the
// inter-site endorsement structure.
func FromLinkDB(ldb *crawldb.LinkDB) *HostGraph {
	g := &HostGraph{index: map[string]int{}}
	node := func(h string) int {
		if i, ok := g.index[h]; ok {
			return i
		}
		i := len(g.Nodes)
		g.index[h] = i
		g.Nodes = append(g.Nodes, h)
		g.out = append(g.out, nil)
		return i
	}
	ldb.ForEach(func(src string, targets []string) {
		sh, _, err := synthweb.SplitURL(src)
		if err != nil {
			return
		}
		si := node(sh)
		for _, t := range targets {
			th, _, err := synthweb.SplitURL(t)
			if err != nil || th == sh {
				continue
			}
			g.out[si] = append(g.out[si], node(th))
		}
	})
	return g
}

// Size returns the number of host nodes.
func (g *HostGraph) Size() int { return len(g.Nodes) }

// PageRank computes the stationary distribution with damping factor d,
// iterating until the L1 change drops below tol or maxIter is reached.
// Dangling nodes distribute their mass uniformly (the standard fix).
func (g *HostGraph) PageRank(d float64, maxIter int, tol float64) map[string]float64 {
	n := len(g.Nodes)
	if n == 0 {
		return map[string]float64{}
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		base := (1 - d) / float64(n)
		for i := range next {
			next[i] = base
		}
		var dangling float64
		for i, outs := range g.out {
			if len(outs) == 0 {
				dangling += rank[i]
				continue
			}
			share := d * rank[i] / float64(len(outs))
			for _, t := range outs {
				next[t] += share
			}
		}
		if dangling > 0 {
			spread := d * dangling / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		var delta float64
		for i := range rank {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < tol {
			break
		}
	}
	out := make(map[string]float64, n)
	for i, h := range g.Nodes {
		out[h] = rank[i]
	}
	return out
}

// Ranked is one host with its PageRank score.
type Ranked struct {
	Host string
	Rank float64
}

// TopHosts returns the k highest-ranked hosts (ties broken by name).
func TopHosts(ranks map[string]float64, k int) []Ranked {
	all := make([]Ranked, 0, len(ranks))
	for h, r := range ranks {
		all = append(all, Ranked{h, r})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Rank != all[j].Rank {
			return all[i].Rank > all[j].Rank
		}
		return all[i].Host < all[j].Host
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// LocalityStats summarizes out-link locality over a page-level LinkDB.
type LocalityStats struct {
	// IntraHost / CrossHost count links staying on vs leaving their host.
	IntraHost, CrossHost int
}

// IntraShare returns the fraction of links that are intra-host.
func (s LocalityStats) IntraShare() float64 {
	total := s.IntraHost + s.CrossHost
	if total == 0 {
		return 0
	}
	return float64(s.IntraHost) / float64(total)
}

// Locality computes link-locality statistics from a LinkDB.
func Locality(ldb *crawldb.LinkDB) LocalityStats {
	var s LocalityStats
	ldb.ForEach(func(src string, targets []string) {
		sh, _, err := synthweb.SplitURL(src)
		if err != nil {
			return
		}
		for _, t := range targets {
			th, _, err := synthweb.SplitURL(t)
			if err != nil {
				continue
			}
			if th == sh {
				s.IntraHost++
			} else {
				s.CrossHost++
			}
		}
	})
	return s
}
