package graph

import (
	"math"
	"testing"

	"webtextie/internal/crawldb"
)

func buildLinkDB() *crawldb.LinkDB {
	l := crawldb.NewLinkDB()
	// hub.com is endorsed by everyone; leaf hosts link to hub and each other.
	l.AddLinks("http://a.com/p0.html", []string{
		"http://hub.com/p0.html", "http://b.com/p0.html", "http://a.com/p1.html"})
	l.AddLinks("http://b.com/p0.html", []string{
		"http://hub.com/p0.html", "http://b.com/p1.html"})
	l.AddLinks("http://c.com/p0.html", []string{"http://hub.com/p1.html"})
	l.AddLinks("http://hub.com/p0.html", []string{"http://a.com/p0.html"})
	return l
}

func TestFromLinkDBDropsSelfLoops(t *testing.T) {
	g := FromLinkDB(buildLinkDB())
	if g.Size() != 4 {
		t.Fatalf("nodes = %d (%v), want 4", g.Size(), g.Nodes)
	}
	for i, outs := range g.out {
		for _, to := range outs {
			if to == i {
				t.Fatal("self-loop survived aggregation")
			}
		}
	}
}

func TestPageRankHubWins(t *testing.T) {
	g := FromLinkDB(buildLinkDB())
	ranks := g.PageRank(0.85, 100, 1e-9)
	if ranks["hub.com"] <= ranks["b.com"] || ranks["hub.com"] <= ranks["c.com"] {
		t.Errorf("hub not top: %v", ranks)
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := FromLinkDB(buildLinkDB())
	ranks := g.PageRank(0.85, 100, 1e-12)
	var sum float64
	for _, r := range ranks {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("rank sum = %v", sum)
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	g := FromLinkDB(crawldb.NewLinkDB())
	if len(g.PageRank(0.85, 10, 1e-6)) != 0 {
		t.Error("empty graph produced ranks")
	}
}

func TestPageRankDanglingNodes(t *testing.T) {
	l := crawldb.NewLinkDB()
	// b.com has no out-links at all (dangling).
	l.AddLinks("http://a.com/p0.html", []string{"http://b.com/p0.html"})
	g := FromLinkDB(l)
	ranks := g.PageRank(0.85, 200, 1e-12)
	var sum float64
	for _, r := range ranks {
		if r <= 0 {
			t.Errorf("non-positive rank: %v", ranks)
		}
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("dangling sum = %v", sum)
	}
}

func TestTopHosts(t *testing.T) {
	ranks := map[string]float64{"a": 0.1, "b": 0.5, "c": 0.3, "d": 0.1}
	top := TopHosts(ranks, 2)
	if len(top) != 2 || top[0].Host != "b" || top[1].Host != "c" {
		t.Errorf("top = %v", top)
	}
	// Ties broken by name.
	top4 := TopHosts(ranks, 4)
	if top4[2].Host != "a" || top4[3].Host != "d" {
		t.Errorf("tie order = %v", top4)
	}
	if got := TopHosts(ranks, 100); len(got) != 4 {
		t.Errorf("oversized k returned %d", len(got))
	}
}

func TestLocality(t *testing.T) {
	l := crawldb.NewLinkDB()
	l.AddLinks("http://a.com/p0.html", []string{
		"http://a.com/p1.html", "http://a.com/p2.html", "http://b.com/p0.html"})
	s := Locality(l)
	if s.IntraHost != 2 || s.CrossHost != 1 {
		t.Errorf("locality = %+v", s)
	}
	if got := s.IntraShare(); math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("intra share = %v", got)
	}
	if (LocalityStats{}).IntraShare() != 0 {
		t.Error("empty stats share != 0")
	}
}

func BenchmarkPageRank(b *testing.B) {
	l := crawldb.NewLinkDB()
	for i := 0; i < 200; i++ {
		src := "http://h" + string(rune('a'+i%26)) + ".com/p0.html"
		l.AddLinks(src, []string{"http://hub.com/p0.html"})
	}
	g := FromLinkDB(l)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.PageRank(0.85, 50, 1e-9)
	}
}
