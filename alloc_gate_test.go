package webtextie

// Zero-alloc gates for the IE hot path (ROADMAP item 2), the dynamic
// counterpart of the static allocfree/boxing/hotpathpurity checks: each
// //lintx:hotpath root runs as a fixed deterministic workload under
// testing.AllocsPerRun and must stay within the allocs/op budget
// committed in BENCH_PR7.json (regenerated with `make bench-pr7`).
// Budgets can only be re-baselined by regenerating the JSON, and hard
// per-workload ceilings below prevent a regenerated baseline from
// silently absorbing a regression — the scan cores must stay at zero.

import (
	"encoding/json"
	"os"
	"strings"
	"sync"
	"testing"

	"webtextie/internal/boiler"
	"webtextie/internal/dedup"
	"webtextie/internal/htmlkit"
	"webtextie/internal/ie/dict"
	"webtextie/internal/ling"
	"webtextie/internal/nlp"
)

// hotDoc is the fixed document every workload chews on: multi-sentence
// ASCII prose with dictionary hits, pronouns, negations, parens, an
// abbreviation, and a decimal — every branch of the hot loops.
const hotDoc = "Alpha binds the beta receptor in approx. 1.5 hours. " +
	"It does not inhibit gamma (the control case). " +
	"Dr. Smith said these results were not conclusive, nor were theirs. " +
	"GAD-67 expression rose while alpha levels fell."

var (
	gateOnce    sync.Once
	gateMatcher *dict.Matcher
	gateBlocks  []htmlkit.Block
	gateIndex   *dedup.Index
	gateSents   []nlp.Span
)

func gateSetup() {
	gateOnce.Do(func() {
		gateMatcher = dict.Build("gate", []string{"alpha", "beta", "gamma"}, dict.DefaultOptions())
		gateBlocks = []htmlkit.Block{
			{Text: "Navigation home about contact", Words: 4, LinkedWords: 4, Tag: "div"},
			{Text: strings.Repeat("prose word ", 20), Words: 40, LinkedWords: 0, Tag: "p"},
			{Text: "short footer", Words: 2, LinkedWords: 1, Tag: "div"},
		}
		gateIndex = dedup.NewIndex(0.9)
		probeSig = dedup.Sketch(hotDoc, 3)
		gateIndex.AddOrFind("seed", probeSig)
		gateSents = nlp.SplitSentences(hotDoc)
	})
}

// allocWorkloads are the gated hot-path workloads. Each must be
// deterministic: same work, same allocations, every run. ceiling is the
// hard bound a regenerated BENCH_PR7.json may never raise a budget past.
var allocWorkloads = []struct {
	name    string
	ceiling float64
	fn      func()
}{
	// Find's single allocation is the fresh result buffer.
	{"dict_find", 1, func() { _ = gateMatcher.Find(hotDoc) }},
	// The caller-owned-buffer entry is allocation-free.
	{"dict_find_append", 0, func() {
		dictBuf = gateMatcher.FindAppend(dictBuf[:0], hotDoc)
	}},
	// One span slice per document.
	{"nlp_sentences", 1, func() { _ = nlp.SplitSentences(hotDoc) }},
	// One token slice per call.
	{"nlp_tokenize", 1, func() { _ = nlp.Tokenize(hotDoc, 0) }},
	// Sentence spans + per-sentence token slices for the 4-sentence doc.
	{"nlp_sentence_tokens", 8, func() { _, _ = nlp.SentenceTokens(hotDoc) }},
	// The regexp Find APIs still allocate their result slices (reasoned
	// //lintx:ignore sites; the PR8 prefilter arc removes them).
	{"ling_analyze", 16, func() { _ = ling.Analyze("d1", hotDoc, gateSents) }},
	// One label slice per page.
	{"boiler_classify", 1, func() { _ = boilerClassifier.Classify(gateBlocks) }},
	// Span scratch + shingle slice; no fold or join copies on ASCII text.
	{"dedup_sketch", 2, func() { _ = dedup.Sketch(hotDoc, 3) }},
	// Probing a warm index against a known duplicate touches only the
	// epoch-marked scratch: zero allocations.
	{"dedup_probe_dup", 0, func() { _, _ = gateIndex.AddOrFind("probe", probeSig) }},
}

var (
	dictBuf          = make([]dict.Match, 0, 16)
	boilerClassifier = boiler.Default()
	probeSig         dedup.Signature
)

// BenchmarkHotPath measures every gated workload; `make bench-pr7`
// freezes the results into BENCH_PR7.json as the committed budgets.
func BenchmarkHotPath(b *testing.B) {
	gateSetup()
	for _, w := range allocWorkloads {
		b.Run(w.name, func(b *testing.B) {
			w.fn() // warm buffers so steady-state is measured
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.fn()
			}
		})
	}
}

// loadAllocBudgets maps workload name -> committed allocs/op from
// BENCH_PR7.json.
func loadAllocBudgets(t *testing.T) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile("BENCH_PR7.json")
	if err != nil {
		t.Fatalf("reading BENCH_PR7.json (regenerate with `make bench-pr7`): %v", err)
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("parsing BENCH_PR7.json: %v", err)
	}
	out := map[string]float64{}
	for _, e := range b.Benchmarks {
		name, ok := strings.CutPrefix(e.Name, "BenchmarkHotPath/")
		if !ok {
			continue
		}
		allocs, ok := e.Metrics["allocs/op"]
		if !ok {
			t.Fatalf("BENCH_PR7.json entry %s has no allocs/op; regenerate with `make bench-pr7`", e.Name)
		}
		out[name] = allocs
	}
	return out
}

// TestAllocGate is the regression gate: every workload must stay within
// its committed allocs/op budget (with +0.5 slack for AllocsPerRun
// rounding) and within the hard ceiling.
func TestAllocGate(t *testing.T) {
	gateSetup()
	budgets := loadAllocBudgets(t)
	for _, w := range allocWorkloads {
		t.Run(w.name, func(t *testing.T) {
			budget, ok := budgets[w.name]
			if !ok {
				t.Fatalf("no committed budget for %s; regenerate BENCH_PR7.json with `make bench-pr7`", w.name)
			}
			if budget > w.ceiling {
				t.Fatalf("committed budget %.1f allocs/op exceeds the hard ceiling %.0f: "+
					"a regenerated baseline may not absorb a regression", budget, w.ceiling)
			}
			w.fn() // warm buffers: the gate measures steady state
			got := testing.AllocsPerRun(100, w.fn)
			if got > budget+0.5 {
				t.Errorf("%s: %.1f allocs/op, committed budget %.1f", w.name, got, budget)
			}
			if got > w.ceiling+0.5 {
				t.Errorf("%s: %.1f allocs/op breaks the hard ceiling %.0f", w.name, got, w.ceiling)
			}
		})
	}
}
