package webtextie

// Facade-level tests: the public API a downstream user sees, exercised
// end-to-end against the shared quick-scale system.

import (
	"strings"
	"testing"

	"webtextie/internal/dataflow"
	"webtextie/internal/meteor"
)

func TestFacadeNewAndAnalyze(t *testing.T) {
	sys, as := benchSystem(&testing.B{})
	if sys == nil || as == nil {
		t.Fatal("facade construction failed")
	}
	if sys.Set.Crawl.Stats.Relevant == 0 {
		t.Fatal("no relevant pages crawled")
	}
	for _, kind := range []CorpusKind{Relevant, Irrelevant, Medline, PMC} {
		if as.ByKind[kind] == nil {
			t.Fatalf("no analysis for %v", kind)
		}
	}
}

func TestFacadeExtraction(t *testing.T) {
	sys, _ := benchSystem(&testing.B{})
	doc := sys.Set.Corpus(Medline).Docs[0]
	for _, et := range []EntityType{Gene, Drug, Disease} {
		_ = sys.ExtractDict(et, doc.Text)
		_ = sys.ExtractML(et, doc.Text)
	}
}

func TestFacadeMeteorScript(t *testing.T) {
	sys, _ := benchSystem(&testing.B{})
	script, err := meteor.Parse(ConsolidatedMeteorScript)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := meteor.Compile(script, sys.Registry())
	if err != nil {
		t.Fatal(err)
	}
	if compiled.Plan.Size() < 25 {
		t.Errorf("plan size = %d", compiled.Plan.Size())
	}
}

func TestFacadeExperiments(t *testing.T) {
	sys, as := benchSystem(&testing.B{})
	exp := NewExperimentsFromSystem(sys)
	_ = as
	out := exp.Table3()
	if !strings.Contains(out, "Medline") {
		t.Errorf("Table3 output:\n%s", out)
	}
}

func TestFacadeBuildCorpora(t *testing.T) {
	sys, _ := benchSystem(&testing.B{})
	// BuildCorpora with the same config reproduces the same corpora.
	set := BuildCorpora(sys.Cfg.Corpora)
	if set.Corpus(Medline).NumDocs() != sys.Set.Corpus(Medline).NumDocs() {
		t.Error("BuildCorpora not deterministic against system build")
	}
}

func TestFacadeCustomOperator(t *testing.T) {
	sys, _ := benchSystem(&testing.B{})
	base := sys.Registry()
	reg := meteor.RegistryFunc(func(name string, p meteor.Params) (*dataflow.Op, error) {
		if name == "mark" {
			return &dataflow.Op{Name: "mark", Pkg: dataflow.BASE,
				Reads: []string{}, Writes: []string{"marked"}, Selectivity: 1,
				Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
					out := rec.Clone()
					out["marked"] = true
					emit(out)
					return nil
				}}, nil
		}
		return base.Resolve(name, p)
	})
	out, _, err := meteor.Run(`
$in  = read from 'docs';
$s   = annotate_sentences $in;
$m   = mark $s;
write $m to 'out';
`, reg, map[string][]dataflow.Record{
		"docs": {{"id": "d1", "text": "One sentence. Two sentences."}},
	}, true, dataflow.DefaultExecConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(out["out"]) != 1 || out["out"][0]["marked"] != true {
		t.Fatalf("custom operator output: %v", out["out"])
	}
}
