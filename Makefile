# Build / verification entry points. `make verify` is the full gate:
# build + tests + vet + domain lint (cmd/lintx) + race detector over the
# concurrency-heavy packages + the chaos (fault-injection) suite.

GO ?= go

# Packages with real concurrency (worth the ~100x race-detector slowdown).
RACE_PKGS = ./internal/obs/... ./internal/dataflow/... ./internal/crawler/...

.PHONY: build test vet lint race chaos supervisor-chaos fuzz bench bench-baseline bench-pr4 bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10 bench-all alloc-gate trace-golden log-golden doctor-golden series-golden prof-golden shard-determinism verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Domain static analysis (internal/analysis/checks): determinism,
# map-iteration order, lock copies, goroutine lifecycles, write-path
# error handling, metric-name hygiene. `lintx -list` enumerates checks.
lint:
	$(GO) run ./cmd/lintx ./...

# The crawler package's full suite takes a couple of minutes under -race;
# the timeout leaves headroom on slow machines.
race:
	$(GO) test -race -timeout 15m $(RACE_PKGS)

# Deterministic fault-injection suite under the race detector: chaos
# crawls over flaky/dead/rate-limited webs, checkpoint/resume identity,
# and the executor's quarantine / fail-fast / retry paths.
chaos:
	$(GO) test -race -timeout 10m \
		-run 'Chaos|Checkpoint|Resume|Fault|Quarantine|FailFast|OpRetries|Panic' \
		./internal/synthweb/ ./internal/crawler/ ./internal/crawler/shard/ ./internal/dataflow/

# Fleet fault-tolerance suite under the race detector: seeded crash
# schedules (explicit points, random-rate replays, and the exhaustive
# crash-at-every-(shard, round) sweep), stall detection, degraded-mode
# completion, and the supervision-is-invisible clean-run gate — every
# recovery byte-identical at DoP 1 and full DoP.
supervisor-chaos:
	$(GO) test -race -timeout 15m -count=1 \
		./internal/crawler/shard/supervisor/
	$(GO) test -race -timeout 10m -count=1 \
		-run 'Crash|StepFault|CheckpointSilent|StepShard|RestartShard|Fence|DeliverMail|SentinelErrors' \
		./internal/synthweb/ ./internal/crawler/ ./internal/crawler/shard/

# Short fuzzing sessions over the HTML pipeline (seeds alone run as part
# of `make test`).
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzTokenizeRepairExtract -fuzztime=30s ./internal/htmlkit/
	$(GO) test -run=NONE -fuzz=FuzzDecodeEntities -fuzztime=15s ./internal/htmlkit/
	$(GO) test -run=NONE -fuzz=FuzzExtract -fuzztime=30s ./internal/boiler/

bench:
	$(GO) test -bench . -benchmem

# Regenerate the committed benchmark baseline (one iteration per
# benchmark; see BENCH_BASELINE.json and bench_baseline_test.go).
bench-baseline:
	$(GO) test -run=NONE -bench . -benchtime 1x | tee /tmp/bench.out
	$(GO) run ./cmd/benchjson < /tmp/bench.out > BENCH_BASELINE.json

# Regenerate the committed tracing-overhead baseline (BENCH_PR4.json):
# the PR3 resilience benchmarks re-measured (the tracing-off regression
# gate, see bench_pr4_test.go) plus the trace-on/off pairs.
bench-pr4:
	( $(GO) test -run=NONE -bench 'Crawl' -benchtime 5x ./internal/crawler/ ; \
	  $(GO) test -run=NONE -bench 'Execute' -benchtime 200x ./internal/dataflow/ ) | tee /tmp/bench_pr4.out
	$(GO) run ./cmd/benchjson < /tmp/bench_pr4.out > BENCH_PR4.json

# Regenerate the committed logging-overhead baseline (BENCH_PR5.json):
# the resilience benchmarks re-measured (the logging-off regression gate,
# see bench_pr5_test.go) plus the log-on/off and trace-on/off pairs.
bench-pr5:
	( $(GO) test -run=NONE -bench 'Crawl' -benchtime 5x ./internal/crawler/ ; \
	  $(GO) test -run=NONE -bench 'Execute' -benchtime 200x ./internal/dataflow/ ) | tee /tmp/bench_pr5.out
	$(GO) run ./cmd/benchjson < /tmp/bench_pr5.out > BENCH_PR5.json

# Regenerate the committed sharded-crawl baseline (BENCH_PR6.json): a
# 12k-page crawl budget against the ~1M-page synthetic web at DoP 1 and
# DoP 4. The gated metric is virtual throughput (vdocs/s) on the
# deterministic shard clocks, so one iteration per benchmark suffices
# and the numbers are machine-independent (see bench_pr6_test.go).
bench-pr6:
	$(GO) test -run=NONE -bench 'ShardCrawl' -benchtime 1x ./internal/crawler/shard/ | tee /tmp/bench_pr6.out
	$(GO) run ./cmd/benchjson < /tmp/bench_pr6.out > BENCH_PR6.json

# Regenerate the committed hot-path allocation budgets (BENCH_PR7.json):
# allocs/op and ns/op for every //lintx:hotpath root's gate workload
# (see alloc_gate_test.go). The allocs/op numbers are the budgets
# `make alloc-gate` enforces.
bench-pr7:
	$(GO) test -run=NONE -bench 'HotPath' -benchmem -benchtime 1000x . | tee /tmp/bench_pr7.out
	$(GO) run ./cmd/benchjson < /tmp/bench_pr7.out > BENCH_PR7.json

# Regenerate the committed supervised-fleet baseline (BENCH_PR8.json):
# the PR-6 DoP-4 fleet plan rerun under the shard supervisor with no
# crash schedule. The gate (bench_pr8_test.go) pins the supervised
# vdocs/s within 2% of BENCH_PR6's DoP-4 number — supervision off the
# fault path is (virtually) free.
bench-pr8:
	$(GO) test -run=NONE -bench 'SupervisedShardCrawl' -benchtime 1x ./internal/crawler/shard/supervisor/ | tee /tmp/bench_pr8.out
	$(GO) run ./cmd/benchjson < /tmp/bench_pr8.out > BENCH_PR8.json

# Regenerate the committed series-sampling baseline (BENCH_PR9.json):
# the PR-8 supervised DoP-4 fleet plan rerun with fleet series sampling
# off and on. The gate (bench_pr9_test.go) pins the sampling-off vdocs/s
# within 2% of BENCH_PR8 — a detached recorder must be free.
bench-pr9:
	$(GO) test -run=NONE -bench 'SupervisedShardCrawlSeries' -benchtime 1x ./internal/crawler/shard/supervisor/ | tee /tmp/bench_pr9.out
	$(GO) run ./cmd/benchjson < /tmp/bench_pr9.out > BENCH_PR9.json

# Regenerate the committed cost-profiling baseline (BENCH_PR10.json):
# the PR-8 supervised DoP-4 fleet plan rerun with per-shard cost
# profiling off and on. The gate (bench_pr10_test.go) pins the
# profiling-off vdocs/s within 2% of BENCH_PR9's sampling-off number — a
# detached profiler must be free. Compare the two baselines with
# `go run ./cmd/benchjson compare BENCH_PR9.json BENCH_PR10.json`.
bench-pr10:
	$(GO) test -run=NONE -bench 'SupervisedShardCrawlProf' -benchtime 1x ./internal/crawler/shard/supervisor/ | tee /tmp/bench_pr10.out
	$(GO) run ./cmd/benchjson < /tmp/bench_pr10.out > BENCH_PR10.json

# Regenerate every committed benchmark baseline in one pass, oldest
# first. `make verify` never runs benchmarks (its gates read only the
# committed BENCH_*.json numbers); run this when a PR moves performance
# on purpose and the committed baselines must follow, then eyeball the
# diffs with `go run ./cmd/benchjson compare`.
bench-all: bench-baseline bench-pr4 bench-pr5 bench-pr6 bench-pr7 bench-pr8 bench-pr9 bench-pr10

# Enforce the committed allocs/op budgets with testing.AllocsPerRun —
# the dynamic counterpart of the static allocfree/boxing/hotpathpurity
# checks in `make lint`.
alloc-gate:
	$(GO) test -run 'TestAllocGate' .

# Golden-test the deterministic trace exports (text/JSON/Chrome byte
# identity per seed) plus the lintx tracename fixture.
trace-golden:
	$(GO) test -run 'Golden|Deterministic|Identical|ByteIdentical' \
		./internal/obs/trace/ ./internal/crawler/ ./internal/dataflow/ ./internal/analysis/checks/

# Golden-test the deterministic event-log exports: cross-DoP and
# checkpoint/resume byte identity, concurrent-emission determinism, and
# the lintx logcall fixture.
log-golden:
	$(GO) test -run 'Golden/logcall|Deterministic|Identical|ByteIdentical|SnapshotLoadResume' \
		./internal/obs/evlog/ ./internal/crawler/ ./internal/dataflow/ ./internal/analysis/checks/

# Golden-test the crawl doctor: rule firing/ranking/filtering plus the
# /logs and /doctor endpoints.
doctor-golden:
	$(GO) test ./internal/obs/doctor/ ./internal/obs/debugserv/ ./internal/obs/cliobs/

# Golden-test the virtual-time series pillar: rollup-cascade purity and
# export byte identity in the package, per-cycle sampling + resume
# identity in the crawler, fleet sampling DoP 1 vs N identity in the
# shard runner and supervisor, the time-aware doctor rules with the
# depth-decay acceptance fixture, the /timeseries endpoint, and the
# lintx seriesname fixture.
series-golden:
	$(GO) test ./internal/obs/series/
	$(GO) test -run 'Series' \
		./internal/crawler/ ./internal/crawler/shard/ ./internal/crawler/shard/supervisor/
	$(GO) test -run 'TimeRules|HarvestDecay|Timeseries|DepthDecay|Golden/seriesname' \
		./internal/obs/doctor/ ./internal/obs/debugserv/ ./internal/synthweb/ ./internal/analysis/checks/

# Golden-test the cost-profile pillar: two-lane recording, export byte
# stability, and merge/snapshot algebra in the package; stage accounting,
# the profiling-off twin, and checkpoint/resume identity in the crawler;
# fleet merge DoP 1 vs N identity in the shard runner; crash-recovery
# identity under the supervisor; the profile-aware doctor rules; the
# /profile endpoint; profdiff and the -max-regress compare gate; and the
# lintx profname fixture.
prof-golden:
	$(GO) test ./internal/obs/prof/ ./cmd/benchjson/
	$(GO) test -run 'Prof|Profile' \
		./internal/crawler/ ./internal/crawler/shard/ ./internal/crawler/shard/supervisor/ \
		./internal/dataflow/ ./internal/obs/doctor/ ./internal/obs/debugserv/
	$(GO) test -run 'Golden/profname|ProfName' ./internal/analysis/checks/

# The sharded-crawl determinism harness: byte identity of the merged
# corpus/metrics/trace/log exports across DoP 1 vs N, across reruns,
# against the plain (unsharded) crawler, under chaos, and across a
# checkpoint/resume cut (see internal/crawler/shard).
shard-determinism:
	$(GO) test -run 'Deterministic|Matches|Identical|Partition|Reshard' \
		./internal/crawler/shard/

verify: build test vet lint race chaos supervisor-chaos trace-golden log-golden doctor-golden series-golden prof-golden shard-determinism alloc-gate
