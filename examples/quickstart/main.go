// Quickstart: build the system, run the paper's analysis pipeline on a
// single document, and inspect dictionary- vs ML-based extractions.
package main

import (
	"fmt"

	"webtextie"
	"webtextie/internal/textgen"
)

func main() {
	// Build everything: lexicons, synthetic web, classifier training,
	// seed generation, focused crawl, POS/NER tagger training.
	fmt.Println("building system (takes a few seconds)...")
	sys := webtextie.New(webtextie.QuickConfig())

	fmt.Printf("crawl: %d relevant + %d irrelevant pages (harvest %.0f%%)\n\n",
		sys.Set.Crawl.Stats.Relevant, sys.Set.Crawl.Stats.Irrelevant,
		100*sys.Set.Crawl.Stats.HarvestRate())

	// Take one Medline-style abstract from the corpus.
	doc := sys.Set.Corpus(webtextie.Medline).Docs[0]
	fmt.Printf("document %s:\n%.300s...\n\n", doc.ID, doc.Text)

	// Extract entities with both methods the paper compares (§3.2).
	for _, et := range []webtextie.EntityType{webtextie.Disease, webtextie.Drug, webtextie.Gene} {
		dict := sys.ExtractDict(et, doc.Text)
		ml := sys.ExtractML(et, doc.Text)
		fmt.Printf("%-8s dictionary: %d mentions, ML: %d mentions\n", et, len(dict), len(ml))
		for i, m := range dict {
			if i >= 3 {
				break
			}
			fmt.Printf("         dict[%d] %q at [%d,%d)\n", i, m.Surface, m.Start, m.End)
		}
	}

	// Gold truth is known for every generated document.
	gold := map[textgen.EntityType]int{}
	for _, m := range doc.Gold.Mentions {
		gold[m.Type]++
	}
	fmt.Printf("\ngold mentions: disease=%d drug=%d gene=%d\n",
		gold[webtextie.Disease], gold[webtextie.Drug], gold[webtextie.Gene])
}
