// Custom-flow example: extend the operator registry with a user-defined
// operator and run a hand-written Meteor script through the optimizer and
// the parallel executor — the §3.1 "declarative UDF-heavy data flow"
// experience from a library user's perspective.
package main

import (
	"fmt"
	"strings"

	"webtextie"
	"webtextie/internal/dataflow"
	"webtextie/internal/meteor"
)

// The script uses built-in operators plus a custom one (shout_title).
const script = `
-- count question sentences in crawled pages, with a custom operator
$pages  = read from 'web';
$net    = boilerplate_detect $pages;
$en     = language_filter $net with lang=en;
$sents  = annotate_sentences $en;
$loud   = shout_title $sents;
$counted = count_sentences $loud;
write $counted to 'out';
`

func main() {
	sys := webtextie.New(webtextie.QuickConfig())
	base := sys.Registry()

	// A registry that adds one custom operator and falls back to the
	// system registry for everything else.
	reg := meteor.RegistryFunc(func(name string, p meteor.Params) (*dataflow.Op, error) {
		if name == "shout_title" {
			return &dataflow.Op{
				Name: "shout_title", Pkg: dataflow.BASE,
				Reads: []string{"title"}, Writes: []string{"title"}, Selectivity: 1,
				Fn: func(rec dataflow.Record, emit dataflow.Emit) error {
					out := rec.Clone()
					if t, ok := rec["title"].(string); ok {
						out["title"] = strings.ToUpper(t)
					}
					emit(out)
					return nil
				},
			}, nil
		}
		return base.Resolve(name, p)
	})

	// Feed 40 raw pages.
	var recs []dataflow.Record
	for _, pg := range sys.Set.Crawl.Relevant {
		if len(recs) >= 40 {
			break
		}
		p, err := sys.Set.Web.Fetch(pg.URL)
		if err != nil {
			continue
		}
		recs = append(recs, dataflow.Record{"id": p.URL, "html": string(p.Body)})
	}

	out, stats, err := meteor.Run(script, reg,
		map[string][]dataflow.Record{"web": recs}, true, dataflow.ExecConfig{DoP: 4})
	if err != nil {
		panic(err)
	}
	fmt.Printf("processed %d pages in %s (%d UDF errors)\n",
		len(recs), stats.Wall.Round(1e6), stats.TotalErrors())
	total := 0
	for _, rec := range out["out"] {
		total += rec["n_sentences"].(int)
	}
	fmt.Printf("%d records reached the sink, %d sentences in total\n", len(out["out"]), total)
}
