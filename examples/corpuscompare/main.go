// Corpus comparison: the paper's motivating question — is there biomedical
// knowledge on the web that is NOT in the scientific literature? (§4.3.2,
// "annotation overlap and difference"). This example runs the content
// analysis over all four corpora and reports web-only entity names, the
// overlap partitions, and the distributional divergences.
package main

import (
	"fmt"
	"sort"

	"webtextie"
	"webtextie/internal/eval"
	"webtextie/internal/stats"
)

func main() {
	fmt.Println("building system and analyzing all four corpora...")
	sys := webtextie.New(webtextie.QuickConfig())
	as, err := sys.AnalyzeAll(4)
	if err != nil {
		panic(err)
	}

	for _, et := range []webtextie.EntityType{webtextie.Disease, webtextie.Drug, webtextie.Gene} {
		rel, irr, med, pmc := as.DistinctNameSets(webtextie.Dict, et)
		o := eval.ComputeOverlap(rel, irr, med, pmc)

		// Names found ONLY in the relevant web corpus: the candidate
		// "knowledge on the web that is not in the literature".
		var webOnly []string
		for name := range rel {
			if !med[name] && !pmc[name] && !irr[name] {
				webOnly = append(webOnly, name)
			}
		}
		sort.Strings(webOnly)

		fmt.Printf("\n=== %s ===\n", et)
		fmt.Printf("distinct names: relevant=%d irrelevant=%d medline=%d pmc=%d (union %d)\n",
			len(rel), len(irr), len(med), len(pmc), o.Total)
		fmt.Printf("relevant-web-only names: %d (%.1f%% of relevant)\n",
			len(webOnly), 100*float64(len(webOnly))/float64(max(1, len(rel))))
		for i, n := range webOnly {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(webOnly)-5)
				break
			}
			fmt.Printf("  %q\n", n)
		}

		relD := as.ByKind[webtextie.Relevant].Distribution(webtextie.Dict, et)
		fmt.Printf("JSD: rel-vs-irrel %.3f   rel-vs-medline %.3f   rel-vs-pmc %.3f\n",
			stats.JSD(relD, as.ByKind[webtextie.Irrelevant].Distribution(webtextie.Dict, et)),
			stats.JSD(relD, as.ByKind[webtextie.Medline].Distribution(webtextie.Dict, et)),
			stats.JSD(relD, as.ByKind[webtextie.PMC].Distribution(webtextie.Dict, et)))
	}

	fmt.Println("\nconclusion (as in §4.3.2): the relevant crawl is distributionally closer")
	fmt.Println("to the scientific literature than to the rejected pages, yet contributes")
	fmt.Println("entity names absent from Medline and PMC.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
