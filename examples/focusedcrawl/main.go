// Focused-crawl example: explore the §5 precision-vs-yield trade-off by
// running the same crawl with different classifier thresholds and
// tunnelling depths — the two knobs the paper's "lessons learned" section
// debates.
package main

import (
	"fmt"

	"webtextie/internal/classify"
	"webtextie/internal/corpora"
	"webtextie/internal/crawler"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

func main() {
	const seed = 7
	lex := textgen.NewLexicon(rng.New(seed), textgen.LexiconSizes{Genes: 600, Drugs: 200, Diseases: 200}, 0.75)
	gen := textgen.NewGenerator(seed+1, lex, textgen.DefaultProfiles())
	webCfg := synthweb.DefaultConfig()
	webCfg.Seed = seed
	webCfg.NumHosts = 120
	web := synthweb.New(webCfg, gen)
	clf := corpora.TrainClassifier(gen, seed+2, 300)

	catalog := seeds.BuildCatalog(seed+3, lex, seeds.CatalogSizes{General: 8, Disease: 20, Drug: 15, Gene: 25})
	seedList := seeds.Generate(seeds.DefaultEngines(seed+4, web), catalog).SeedURLs
	fmt.Printf("%d seed URLs\n\n", len(seedList))

	run := func(label string, threshold float64, tunnelling int) {
		cfg := crawler.DefaultConfig()
		cfg.MaxPagesPerHost = 50
		cfg.Tunnelling = tunnelling
		c := clfCopy(clf, threshold)
		res := crawler.New(cfg, web, c).Run(seedList)
		st := res.Stats

		// Precision of the harvested corpus against gold labels.
		goldRel := 0
		for _, p := range res.Relevant {
			if p.GoldRelevant {
				goldRel++
			}
		}
		prec := 0.0
		if st.Relevant > 0 {
			prec = float64(goldRel) / float64(st.Relevant)
		}
		fmt.Printf("%-34s yield=%5d relevant docs, corpus precision=%.2f, fetched=%5d, frontier emptied=%v\n",
			label, st.Relevant, prec, st.Fetched, st.FrontierEmptied)
	}

	fmt.Println("classifier threshold sweep (precision-geared vs recall-geared, §5):")
	run("threshold 0.90 (high precision)", 0.90, 1)
	run("threshold 0.50 (default)", 0.50, 1)
	run("threshold 0.20 (high recall)", 0.20, 1)

	fmt.Println("\ntunnelling sweep (following links through irrelevant pages, §5):")
	run("tunnelling 1 (stop immediately)", 0.5, 1)
	run("tunnelling 2", 0.5, 2)
	run("tunnelling 3", 0.5, 3)
}

// clfCopy returns the classifier with a different decision threshold.
// NaiveBayes model state is shared (read-only during crawling).
func clfCopy(base *classify.NaiveBayes, threshold float64) *classify.NaiveBayes {
	c := *base
	c.Threshold = threshold
	return &c
}
