module webtextie

go 1.24
