package webtextie

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (§4), plus ablation benches for the design
// choices DESIGN.md calls out. Each benchmark regenerates its experiment
// and reports domain metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. EXPERIMENTS.md records paper-reported vs
// measured values for every entry.

import (
	"fmt"
	"sync"
	"testing"

	"webtextie/internal/boiler"
	"webtextie/internal/classify"
	"webtextie/internal/cluster"
	"webtextie/internal/core"
	"webtextie/internal/crawler"
	"webtextie/internal/dataflow"
	"webtextie/internal/eval"
	"webtextie/internal/graph"
	"webtextie/internal/ie/crf"
	"webtextie/internal/ie/dict"
	"webtextie/internal/nlp/postag"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/stats"
	"webtextie/internal/textgen"
)

var (
	benchOnce sync.Once
	benchSys  *System
	benchAS   *AnalysisSet
)

// benchSystem builds the shared quick-scale system once per process.
func benchSystem(b *testing.B) (*System, *AnalysisSet) {
	b.Helper()
	benchOnce.Do(func() {
		benchSys = New(QuickConfig())
		as, err := benchSys.AnalyzeAll(4)
		if err != nil {
			panic(err)
		}
		benchAS = as
	})
	return benchSys, benchAS
}

// --- Table 1: seed-term catalogues and seed generation ---

func BenchmarkTable1SeedGeneration(b *testing.B) {
	sys, _ := benchSystem(b)
	sizes := seeds.ScaledSizes(seeds.PaperSizes(), 100)
	b.ResetTimer()
	var run seeds.Run
	for i := 0; i < b.N; i++ {
		catalog := seeds.BuildCatalog(3, sys.Set.Lexicon, sizes)
		run = seeds.Generate(seeds.DefaultEngines(4, sys.Set.Web), catalog)
	}
	b.ReportMetric(float64(len(run.SeedURLs)), "seedURLs")
	b.ReportMetric(float64(run.QueriesIssued), "queries")
}

// --- §4.1: crawl throughput and harvest rate ---

func BenchmarkCrawlThroughput(b *testing.B) {
	sys, _ := benchSystem(b)
	catalog := seeds.BuildCatalog(3, sys.Set.Lexicon,
		seeds.CatalogSizes{General: 5, Disease: 15, Drug: 10, Gene: 20})
	seedURLs := seeds.Generate(seeds.DefaultEngines(4, sys.Set.Web), catalog).SeedURLs
	b.ResetTimer()
	var st crawler.Stats
	for i := 0; i < b.N; i++ {
		cfg := crawler.DefaultConfig()
		cfg.MaxPages = 300
		st = crawler.New(cfg, sys.Set.Web, sys.Set.Classifier).Run(seedURLs).Stats
	}
	b.ReportMetric(100*st.HarvestRate(), "harvest%")
	b.ReportMetric(st.DocsPerSecond(), "simDocs/s")
	b.ReportMetric(float64(st.Fetched)/b.Elapsed().Seconds()*float64(b.N), "realDocs/s")
}

// --- Table 2: PageRank over the crawled link graph ---

func BenchmarkTable2PageRank(b *testing.B) {
	sys, _ := benchSystem(b)
	g := graph.FromLinkDB(sys.Set.Crawl.LinkDB)
	b.ResetTimer()
	var top []graph.Ranked
	for i := 0; i < b.N; i++ {
		top = graph.TopHosts(g.PageRank(0.85, 100, 1e-10), 30)
	}
	b.ReportMetric(float64(g.Size()), "hosts")
	b.ReportMetric(float64(len(top)), "top")
}

// --- Table 3: corpus construction ---

func BenchmarkTable3CorpusSummary(b *testing.B) {
	sys, _ := benchSystem(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(sys.Set.Table3())
	}
	b.ReportMetric(float64(rows), "corpora")
	rel := sys.Set.Corpus(Relevant)
	b.ReportMetric(rel.MeanChars(), "relMeanChars")
	b.ReportMetric(sys.Set.Corpus(Medline).MeanChars(), "medlineMeanChars")
}

// --- Fig 3a: POS tagging runtime vs sentence length ---

func BenchmarkFig3aPOSTagging(b *testing.B) {
	sys, _ := benchSystem(b)
	gen := sys.Set.Generator
	r := rng.New(5)
	var words []string
	for len(words) < 400 {
		d := gen.Doc(r, Medline, "bench")
		for _, s := range d.Sentences {
			for _, tok := range s.Tokens {
				words = append(words, tok.Text)
			}
		}
	}
	for _, n := range []int{10, 50, 200, 400} {
		b.Run(fmt.Sprintf("tokens=%d", n), func(b *testing.B) {
			cfg := postag.DefaultConfig()
			cfg.MaxTokens = 0
			in := words[:n]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.POS.Tag(in); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)/b.Elapsed().Seconds()*float64(b.N)/1e6, "Mtokens/s")
		})
	}
}

// --- Fig 3b: dictionary vs ML NER runtime ---

func BenchmarkFig3bNER(b *testing.B) {
	sys, _ := benchSystem(b)
	gen := sys.Set.Generator
	d := gen.Doc(rng.New(6), Medline, "bench")
	text := d.Text
	b.Run("dict/gene", func(b *testing.B) {
		b.SetBytes(int64(len(text)))
		for i := 0; i < b.N; i++ {
			_ = sys.DictMatchers[Gene].Find(text)
		}
	})
	b.Run("ml/gene", func(b *testing.B) {
		b.SetBytes(int64(len(text)))
		for i := 0; i < b.N; i++ {
			_ = sys.CRFTaggers[Gene].Extract(text)
		}
	})
}

// --- Fig 4: scale-up on the simulated paper cluster ---

func BenchmarkFig4ScaleUp(b *testing.B) {
	ling, ent, _ := core.PaperProfiles()
	c := cluster.PaperCluster()
	dops := []int{1, 2, 4, 8, 12, 16, 20, 24, 28}
	b.ResetTimer()
	var lp, ep []cluster.SweepPoint
	for i := 0; i < b.N; i++ {
		lp = c.ScaleUp(ling, 1, dops)
		ep = c.ScaleUp(ent, 1, dops)
	}
	b.ReportMetric(lp[len(lp)-1].Result.TotalSec/lp[0].Result.TotalSec, "lingDegrade")
	b.ReportMetric(ep[len(ep)-1].Result.TotalSec/ep[0].Result.TotalSec, "entityDegrade")
}

// --- Fig 5: scale-out on the simulated paper cluster ---

func BenchmarkFig5ScaleOut(b *testing.B) {
	ling, ent, _ := core.PaperProfiles()
	c := cluster.PaperCluster()
	dops := []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 56, 84, 140, 156}
	b.ResetTimer()
	var lingDrop, entDrop float64
	for i := 0; i < b.N; i++ {
		lp := c.ScaleOut(ling, 20, dops)
		ep := c.ScaleOut(ent, 20, dops)
		lingDrop = 1 - lp[len(lp)-1].Result.TotalSec/lp[0].Result.TotalSec
		var e4, e16 float64
		for _, p := range ep {
			if p.DoP == 4 {
				e4 = p.Result.TotalSec
			}
			if p.DoP == 16 {
				e16 = p.Result.TotalSec
			}
		}
		entDrop = 1 - e16/e4
	}
	b.ReportMetric(100*lingDrop, "lingDrop%")
	b.ReportMetric(100*entDrop, "entityDrop%")
}

// --- Fig 6: linguistic distributions ---

func BenchmarkFig6Linguistic(b *testing.B) {
	_, as := benchSystem(b)
	b.ResetTimer()
	var p float64
	for i := 0; i < b.N; i++ {
		var rel, med []float64
		for _, l := range as.ByKind[Relevant].Ling {
			rel = append(rel, float64(l.Chars))
		}
		for _, l := range as.ByKind[Medline].Ling {
			med = append(med, float64(l.Chars))
		}
		_, p = stats.MannWhitney(rel, med)
	}
	b.ReportMetric(p, "MWW-p")
}

// --- Table 4 / Fig 7: entity extraction over all corpora ---

func BenchmarkTable4EntityExtraction(b *testing.B) {
	sys, _ := benchSystem(b)
	reg := sys.Registry()
	corpus := sys.Set.Corpus(Medline)
	b.ResetTimer()
	var a *CorpusAnalysis
	for i := 0; i < b.N; i++ {
		var err error
		a, err = sys.AnalyzeCorpus(reg, corpus, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(a.DistinctNames[Dict][Gene])), "dictGeneNames")
	b.ReportMetric(float64(len(a.RawMLGeneNames)), "mlGeneNamesRaw")
}

func BenchmarkFig7Incidences(b *testing.B) {
	_, as := benchSystem(b)
	b.ResetTimer()
	var rel, med float64
	for i := 0; i < b.N; i++ {
		rel = as.ByKind[Relevant].MentionsPer1000Sentences(Dict, Disease)
		med = as.ByKind[Medline].MentionsPer1000Sentences(Dict, Disease)
	}
	b.ReportMetric(rel, "relDisease/1k")
	b.ReportMetric(med, "medDisease/1k")
}

// --- Fig 8: overlap partitions ---

func BenchmarkFig8Overlap(b *testing.B) {
	_, as := benchSystem(b)
	b.ResetTimer()
	var o eval.Overlap
	for i := 0; i < b.N; i++ {
		rel, irr, med, pmc := as.DistinctNameSets(Dict, Disease)
		o = eval.ComputeOverlap(rel, irr, med, pmc)
	}
	b.ReportMetric(float64(o.Total), "distinctNames")
}

// --- §4.3.2: JSD ---

func BenchmarkJSD(b *testing.B) {
	_, as := benchSystem(b)
	relD := as.ByKind[Relevant].Distribution(Dict, Gene)
	irrD := as.ByKind[Irrelevant].Distribution(Dict, Gene)
	medD := as.ByKind[Medline].Distribution(Dict, Gene)
	b.ResetTimer()
	var jIrr, jMed float64
	for i := 0; i < b.N; i++ {
		jIrr = stats.JSD(relD, irrD)
		jMed = stats.JSD(relD, medD)
	}
	b.ReportMetric(jIrr, "JSD(rel,irr)")
	b.ReportMetric(jMed, "JSD(rel,med)")
}

// --- Consolidated flow end-to-end ---

func BenchmarkConsolidatedFlow(b *testing.B) {
	sys, _ := benchSystem(b)
	reg := sys.Registry()
	var recs []dataflow.Record
	for _, pg := range sys.Set.Crawl.Relevant {
		if len(recs) >= 20 {
			break
		}
		p, err := sys.Set.Web.Fetch(pg.URL)
		if err != nil {
			continue
		}
		recs = append(recs, dataflow.Record{"id": p.URL, "html": string(p.Body)})
	}
	plan := reg.ConsolidatedFlow()
	dataflow.Optimize(plan)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := dataflow.Execute(plan, recs, dataflow.ExecConfig{DoP: 4}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(plan.Size()), "operators")
}

// --- Ablations (DESIGN.md) ---

// BenchmarkAblationDictVariants: variant expansion costs automaton size
// (memory) and buys recall.
func BenchmarkAblationDictVariants(b *testing.B) {
	sys, _ := benchSystem(b)
	surfaces := sys.Set.Lexicon.DictionarySurfaces(Disease)
	for _, variants := range []bool{true, false} {
		b.Run(fmt.Sprintf("variants=%v", variants), func(b *testing.B) {
			var m *dict.Matcher
			for i := 0; i < b.N; i++ {
				m = dict.Build("disease", surfaces,
					dict.Options{Variants: variants, CaseInsensitive: true})
			}
			b.ReportMetric(float64(m.Stats().Nodes), "nodes")
			b.ReportMetric(float64(m.Stats().ApproxBytes()), "bytes")
		})
	}
}

// BenchmarkAblationCRFFeatures: shape features cause the TLA pathology on
// web text (and help in-domain accuracy).
func BenchmarkAblationCRFFeatures(b *testing.B) {
	sys, _ := benchSystem(b)
	gen := sys.Set.Generator
	r := rng.New(8)
	var docs []*textgen.Doc
	for i := 0; i < 100; i++ {
		docs = append(docs, gen.Doc(r, Medline, fmt.Sprint("abl", i)))
	}
	data := crf.TrainingSentences(docs, Gene)
	for _, shapes := range []bool{true, false} {
		b.Run(fmt.Sprintf("shapes=%v", shapes), func(b *testing.B) {
			cfg := crf.DefaultConfig()
			cfg.UseShapeFeatures = shapes
			var tagger *crf.Tagger
			for i := 0; i < b.N; i++ {
				tagger = crf.Train(Gene, data, cfg)
			}
			// TLA matches over 20 web documents.
			wr := rng.New(9)
			tlas := 0
			for d := 0; d < 20; d++ {
				web := gen.Doc(wr, Relevant, fmt.Sprint("webdoc", d))
				for _, m := range tagger.Extract(web.Text) {
					if crf.IsTLA(m.Surface) {
						tlas++
					}
				}
			}
			b.ReportMetric(float64(tlas), "tlaMatches")
			b.ReportMetric(float64(tagger.NumFeatures()), "features")
		})
	}
}

// BenchmarkAblationTunnelling: following links through irrelevant pages
// (§5) trades fetches for yield.
func BenchmarkAblationTunnelling(b *testing.B) {
	sys, _ := benchSystem(b)
	catalog := seeds.BuildCatalog(3, sys.Set.Lexicon,
		seeds.CatalogSizes{General: 4, Disease: 6, Drug: 5, Gene: 8})
	seedURLs := seeds.Generate(seeds.DefaultEngines(4, sys.Set.Web), catalog).SeedURLs
	for _, tn := range []int{1, 2} {
		b.Run(fmt.Sprintf("tunnelling=%d", tn), func(b *testing.B) {
			var st crawler.Stats
			for i := 0; i < b.N; i++ {
				cfg := crawler.DefaultConfig()
				cfg.Tunnelling = tn
				cfg.MaxPagesPerHost = 40
				st = crawler.New(cfg, sys.Set.Web, sys.Set.Classifier).Run(seedURLs).Stats
			}
			b.ReportMetric(float64(st.Relevant), "relevantDocs")
			b.ReportMetric(float64(st.Fetched), "fetched")
		})
	}
}

// BenchmarkAblationClassifierThreshold: the precision/yield trade-off (§5).
// The test set includes "fringe" documents — commerce pages sprinkled with
// biomedical vocabulary, the class behind the paper's false positives
// ("pages describing chemical support for body builders or technical
// devices used for medical purposes", §4.1). Gold-labelling fringe pages
// irrelevant, a higher threshold buys precision at the cost of recall on
// genuinely relevant pages with weak signals.
func BenchmarkAblationClassifierThreshold(b *testing.B) {
	sys, _ := benchSystem(b)
	gen := sys.Set.Generator
	r := rng.New(10)
	var examples []classify.Example
	for i := 0; i < 100; i++ {
		examples = append(examples,
			classify.Example{Text: gen.Doc(r, Medline, fmt.Sprint("tm", i)).Text, Class: classify.Relevant},
			classify.Example{Text: gen.Doc(r, Irrelevant, fmt.Sprint("tw", i)).Text, Class: classify.Irrelevant})
	}
	train := examples
	var test []classify.Example
	for i := 0; i < 60; i++ {
		// Fringe: a shopping page quoting some medical prose (irrelevant).
		web := gen.Doc(r, Irrelevant, fmt.Sprint("fw", i)).Text
		med := gen.Doc(r, Medline, fmt.Sprint("fm", i)).Text
		cut := len(med) * 2 / 3
		test = append(test, classify.Example{Text: web + " " + med[:cut], Class: classify.Irrelevant})
		// Weak-signal relevant: a short fragment of an abstract amid chatter.
		frag := med[:len(med)/3] + " " + web[:len(web)/4]
		test = append(test, classify.Example{Text: frag, Class: classify.Relevant})
	}
	for _, th := range []float64{0.2, 0.5, 0.9} {
		b.Run(fmt.Sprintf("threshold=%.1f", th), func(b *testing.B) {
			var q classify.Quality
			for i := 0; i < b.N; i++ {
				nb := classify.Train(train, th)
				q = classify.Evaluate(nb, test)
			}
			b.ReportMetric(q.Precision(), "precision")
			b.ReportMetric(q.Recall(), "recall")
		})
	}
}

// BenchmarkAblationOptimizer: logical optimization of the consolidated
// flow (filter push-down ahead of the expensive IE stages).
func BenchmarkAblationOptimizer(b *testing.B) {
	sys, _ := benchSystem(b)
	reg := sys.Registry()
	var recs []dataflow.Record
	for _, pg := range sys.Set.Crawl.IrrelevantPages {
		if len(recs) >= 30 {
			break
		}
		p, err := sys.Set.Web.Fetch(pg.URL)
		if err != nil {
			continue
		}
		recs = append(recs, dataflow.Record{"id": p.URL, "html": string(p.Body)})
	}
	for _, opt := range []bool{false, true} {
		b.Run(fmt.Sprintf("optimize=%v", opt), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				plan := reg.ConsolidatedFlow()
				if opt {
					dataflow.Optimize(plan)
				}
				if _, _, err := dataflow.Execute(plan, recs, dataflow.ExecConfig{DoP: 4}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHMMOrder: order-2 vs order-3 POS tagging.
func BenchmarkAblationHMMOrder(b *testing.B) {
	sys, _ := benchSystem(b)
	gen := sys.Set.Generator
	r := rng.New(11)
	var data [][]postag.TaggedToken
	for i := 0; i < 150; i++ {
		d := gen.Doc(r, Medline, fmt.Sprint("hmm", i))
		for _, s := range d.Sentences {
			var sent []postag.TaggedToken
			for _, tok := range s.Tokens {
				sent = append(sent, postag.TaggedToken{Word: tok.Text, Tag: tok.Tag})
			}
			data = append(data, sent)
		}
	}
	split := len(data) * 9 / 10
	for _, order := range []int{2, 3} {
		b.Run(fmt.Sprintf("order=%d", order), func(b *testing.B) {
			cfg := postag.DefaultConfig()
			cfg.Order = order
			tagger := postag.Train(data[:split], cfg)
			var gold, pred [][]string
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gold, pred = gold[:0], pred[:0]
				for _, s := range data[split:] {
					words := make([]string, len(s))
					gs := make([]string, len(s))
					for j, tok := range s {
						words[j] = tok.Word
						gs[j] = tok.Tag
					}
					tags, err := tagger.Tag(words)
					if err != nil {
						continue
					}
					gold = append(gold, gs)
					pred = append(pred, tags)
				}
			}
			b.ReportMetric(postag.Accuracy(gold, pred), "accuracy")
		})
	}
}

// BenchmarkAblationBoilerplateTables: the KeepTables fix for the §4.1
// recall losses in tables and lists.
func BenchmarkAblationBoilerplateTables(b *testing.B) {
	sys, _ := benchSystem(b)
	var pages []string
	var gold []string
	for _, pg := range sys.Set.Crawl.Relevant {
		if len(pages) >= 40 || pg.Gold == nil {
			break
		}
		p, err := sys.Set.Web.Fetch(pg.URL)
		if err != nil {
			continue
		}
		pages = append(pages, string(p.Body))
		gold = append(gold, pg.Gold.Text)
	}
	for _, keep := range []bool{false, true} {
		b.Run(fmt.Sprintf("keepTables=%v", keep), func(b *testing.B) {
			c := boiler.Default()
			c.KeepTables = keep
			var sumR float64
			for i := 0; i < b.N; i++ {
				sumR = 0
				for j, html := range pages {
					res := c.Extract(html)
					_, r := boiler.WordOverlapPR(res.NetText, gold[j])
					sumR += r
				}
			}
			b.ReportMetric(sumR/float64(len(pages)), "recall")
		})
	}
}

// BenchmarkAblationEntityBoost: the §5 consolidated-process extension —
// IE-informed relevance rescues pages a precision-geared classifier
// rejects.
func BenchmarkAblationEntityBoost(b *testing.B) {
	sys, _ := benchSystem(b)
	catalog := seeds.BuildCatalog(3, sys.Set.Lexicon,
		seeds.CatalogSizes{General: 4, Disease: 8, Drug: 6, Gene: 10})
	seedURLs := seeds.Generate(seeds.DefaultEngines(4, sys.Set.Web), catalog).SeedURLs
	strict := sys.Set.Classifier.Clone()
	strict.Threshold = 0.999
	for _, boost := range []bool{false, true} {
		b.Run(fmt.Sprintf("entityBoost=%v", boost), func(b *testing.B) {
			var st crawler.Stats
			for i := 0; i < b.N; i++ {
				cfg := crawler.DefaultConfig()
				cfg.MaxPages = 400
				cfg.EntityBoost = boost
				c := crawler.New(cfg, sys.Set.Web, strict.Clone())
				if boost {
					c.WithEntityMatchers(sys.DictMatchers)
				}
				st = c.Run(seedURLs).Stats
			}
			b.ReportMetric(float64(st.Relevant), "relevantDocs")
			b.ReportMetric(float64(st.EntityBoosted), "boosted")
		})
	}
}

// BenchmarkAblationSelfTraining: the §2.1 incremental-update extension.
func BenchmarkAblationSelfTraining(b *testing.B) {
	sys, _ := benchSystem(b)
	catalog := seeds.BuildCatalog(3, sys.Set.Lexicon,
		seeds.CatalogSizes{General: 4, Disease: 8, Drug: 6, Gene: 10})
	seedURLs := seeds.Generate(seeds.DefaultEngines(4, sys.Set.Web), catalog).SeedURLs
	for _, st := range []bool{false, true} {
		b.Run(fmt.Sprintf("selfTraining=%v", st), func(b *testing.B) {
			var stats crawler.Stats
			for i := 0; i < b.N; i++ {
				cfg := crawler.DefaultConfig()
				cfg.MaxPages = 400
				cfg.SelfTraining = st
				stats = crawler.New(cfg, sys.Set.Web, sys.Set.Classifier.Clone()).Run(seedURLs).Stats
			}
			b.ReportMetric(float64(stats.SelfTrainUpdates), "updates")
			b.ReportMetric(float64(stats.Relevant), "relevantDocs")
		})
	}
}

// BenchmarkRelationExtraction: the relation-extraction extension flow.
func BenchmarkRelationExtraction(b *testing.B) {
	sys, _ := benchSystem(b)
	reg := sys.Registry()
	plan := reg.RelationFlow(false)
	c := sys.Set.Corpus(Medline)
	recs := make([]dataflow.Record, 0, 50)
	for _, d := range c.Docs[:min(50, len(c.Docs))] {
		recs = append(recs, dataflow.Record{"id": d.ID, "text": d.Text})
	}
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		results, _, err := dataflow.Execute(plan, recs, dataflow.ExecConfig{DoP: 4})
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, sink := range plan.Sinks() {
			for _, rec := range results[sink.ID()] {
				total += rec["n_relations"].(int)
			}
		}
	}
	b.ReportMetric(float64(total), "relations")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
