package webtextie

// Gate over the committed tracing-overhead baseline (BENCH_PR4.json,
// regenerated with `make bench-pr4`). The file re-measures the PR3
// resilience benchmarks alongside the new trace-on/off pairs in one
// session, so the tracing-off cost is judged against an untraced twin
// measured under identical load — absolute comparisons against the
// PR3-era file would gate on machine drift, not on code.

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
)

func loadBenchFile(t *testing.T, path string) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	out := map[string]float64{}
	for _, e := range b.Benchmarks {
		if !strings.HasPrefix(e.Name, "Benchmark") {
			t.Errorf("%s: entry %q does not name a benchmark", path, e.Name)
		}
		if _, dup := out[e.Name]; dup {
			t.Errorf("%s: duplicate entry %q", path, e.Name)
		}
		if e.Iterations < 1 {
			t.Errorf("%s: %s ran %d iterations", path, e.Name, e.Iterations)
		}
		if e.Metrics["ns/op"] <= 0 {
			t.Errorf("%s: %s has ns/op = %v", path, e.Name, e.Metrics["ns/op"])
		}
		out[e.Name] = e.Metrics["ns/op"]
	}
	return out
}

// TestBenchPR4TracingOverheadGate enforces the tracing cost contract on
// the committed numbers: with no recorder attached the crawl and the
// executor must stay within 2% of their untraced twins (the trace==nil
// branches are supposed to be free), and the traced runs must be present
// so the real overhead stays visible in review.
func TestBenchPR4TracingOverheadGate(t *testing.T) {
	pr4 := loadBenchFile(t, "BENCH_PR4.json")
	if len(pr4) == 0 {
		t.Fatal("BENCH_PR4.json holds no benchmarks")
	}
	pairs := []struct{ off, base string }{
		{"BenchmarkCrawlChaosTraceOff", "BenchmarkCrawlChaosResilient"},
		{"BenchmarkExecuteTraceOff", "BenchmarkExecuteQuarantineFaultFree"},
	}
	for _, p := range pairs {
		off, base := pr4[p.off], pr4[p.base]
		if off == 0 || base == 0 {
			t.Fatalf("BENCH_PR4.json is missing %s or %s", p.off, p.base)
		}
		if ratio := off / base; ratio > 1.02 {
			t.Errorf("%s is %.1f%% slower than %s; tracing-off must cost <=2%%",
				p.off, 100*(ratio-1), p.base)
		}
	}
	for _, want := range []string{"BenchmarkCrawlChaosTraceOn", "BenchmarkExecuteTraceOn"} {
		if pr4[want] == 0 {
			t.Errorf("BENCH_PR4.json is missing %s (the measured tracing-on cost)", want)
		}
	}
}

// TestBenchPR4CoversPR3 keeps the baseline lineage intact: every PR3
// benchmark is re-measured in BENCH_PR4.json, and no re-measurement moved
// by more than 2x in either direction (machine drift between sessions is
// expected; an order-of-magnitude jump means a broken benchmark, not a
// slower machine).
func TestBenchPR4CoversPR3(t *testing.T) {
	pr3 := loadBenchFile(t, "BENCH_PR3.json")
	pr4 := loadBenchFile(t, "BENCH_PR4.json")
	for name, old := range pr3 {
		now := pr4[name]
		if now == 0 {
			t.Errorf("BENCH_PR4.json dropped %s (present in BENCH_PR3.json)", name)
			continue
		}
		if ratio := now / old; ratio > 2 || ratio < 0.5 {
			t.Errorf("%s moved %.2fx between PR3 and PR4 baselines (%s -> %s); "+
				"re-measure with `make bench-pr4`", name, ratio,
				fmtNs(old), fmtNs(now))
		}
	}
}

func fmtNs(ns float64) string {
	return fmt.Sprintf("%.2fms", ns/1e6)
}
