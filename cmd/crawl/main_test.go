package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCrawl compiles this package's binary into a temp dir so the test
// can drive it exactly as an operator would.
func buildCrawl(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "crawl")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCrawl(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("crawl %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// TestCheckpointResumeWithLogCLI covers the CLI contract the package doc
// makes: a crawl interrupted with -checkpoint and continued with -resume
// exports the same event-log bytes as an uninterrupted run. Regression:
// the resume invocation must not emit seed-generation records into the
// sink before WithLog loads the checkpoint's log snapshot — that used to
// panic with "evlog: Load into a used sink".
func TestCheckpointResumeWithLogCLI(t *testing.T) {
	bin := buildCrawl(t)
	dir := t.TempDir()
	common := []string{"-hosts", "40", "-pages", "120", "-seed", "3", "-terms", "20"}

	fullLog := filepath.Join(dir, "full.logfmt")
	runCrawl(t, bin, append(common, "-log-out", fullLog)...)

	cpFile := filepath.Join(dir, "crawl.ckpt")
	partLog := filepath.Join(dir, "part.logfmt")
	out := runCrawl(t, bin, append(common,
		"-checkpoint", cpFile, "-checkpoint-cycles", "3", "-log-out", partLog)...)
	if !strings.Contains(out, "checkpoint after") {
		t.Fatalf("checkpoint run did not checkpoint:\n%s", out)
	}

	resumedLog := filepath.Join(dir, "resumed.logfmt")
	out = runCrawl(t, bin, append(common,
		"-resume", cpFile, "-log-out", resumedLog)...)
	if !strings.Contains(out, "resumed from") {
		t.Fatalf("resume run did not resume:\n%s", out)
	}

	full, err := os.ReadFile(fullLog)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := os.ReadFile(resumedLog)
	if err != nil {
		t.Fatal(err)
	}
	if len(full) == 0 {
		t.Fatal("uninterrupted run exported no log records")
	}
	if !bytes.Equal(full, resumed) {
		t.Fatalf("resumed log export differs from uninterrupted run:\n--- full\n%s\n--- resumed\n%s",
			full, resumed)
	}
}
