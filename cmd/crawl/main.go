// Command crawl runs the focused crawler (§2) against the synthetic web
// and prints the §4.1 crawl statistics.
//
// Usage:
//
//	crawl [-hosts N] [-pages N] [-seed N] [-tunnel N] [-threshold P] [-metrics]
//	      [-shards N] [-shard-workers N]
//	      [-supervise] [-shard-recovery-budget N] [-shard-stall-factor F]
//	      [-shard-crash-at S:R[:K],...] [-shard-crash-rate P] [-shard-crash-seed N] [-shard-crash-max-attempts N]
//	      [-failure-rate P] [-dead-hosts P] [-slow-hosts P] [-ratelimit-hosts P] [-truncate-rate P]
//	      [-max-retries N] [-breaker-failures N] [-breaker-open-ms N]
//	      [-checkpoint FILE -checkpoint-cycles N] [-resume FILE]
//	      [-trace] [-trace-out FILE] [-trace-chrome FILE]
//	      [-log] [-log-out FILE] [-doctor] [-debug-addr HOST:PORT]
//	      [-series] [-series-out FILE] [-series-json FILE]
//
// -shards N partitions the frontier by host hash into N shards, each with
// its own crawldb, metric registry, trace recorder, and log sink, crawling
// in BSP rounds on -shard-workers goroutines (default: one per shard).
// The merged corpus, statistics, and observability exports are
// byte-identical for any worker count; -pages becomes a fleet-wide budget
// enforced at round barriers. -checkpoint/-resume write and read a fleet
// manifest of per-shard checkpoints; the shard count must match on
// resume. -debug-addr is not available in sharded mode.
//
// -supervise runs the fleet under the fault-tolerant supervisor: shard
// panics are caught, the shard is rolled back to its silent per-round
// barrier checkpoint and re-stepped (byte-identical recovery), stragglers
// are flagged via virtual-clock deadlines, and a shard that crashes past
// its -shard-recovery-budget is fenced — the run completes degraded with
// the missing host-hash partitions listed in the recovery summary and the
// corpus manifest. The -shard-crash-* flags inject a deterministic crash
// schedule (pure in the crash seed) and imply -supervise.
//
// -trace attaches the deterministic lineage recorder; -trace-out /
// -trace-chrome write its end-of-run export (text, or Perfetto-loadable
// trace_event JSON). -log attaches the deterministic structured event log
// (-log-out writes its logfmt export) and -doctor prints the cross-pillar
// diagnosis at exit. -series samples the metric registry on the virtual
// clock — per cycle unsharded, per BSP round fleet-wide — and prints
// end-of-run sparklines (-series-out / -series-json write the CSV and
// JSON exports). -debug-addr serves /metrics, /traces, /logs, /doctor,
// /timeseries, /progress and /debug/pprof live while the crawl runs.
//
// Fault injection is deterministic in the seed: the same flags reproduce
// the same failures, retries, and breaker trips. A crawl interrupted with
// -checkpoint and continued with -resume prints the same final statistics
// — and the same event-log export — as an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"webtextie/internal/classify"
	"webtextie/internal/corpora"
	"webtextie/internal/crawldb"
	"webtextie/internal/crawler"
	"webtextie/internal/crawler/shard"
	"webtextie/internal/crawler/shard/supervisor"
	"webtextie/internal/graph"
	"webtextie/internal/obs"
	"webtextie/internal/obs/cliobs"
	"webtextie/internal/obs/doctor"
	"webtextie/internal/obs/evlog"
	"webtextie/internal/obs/prof"
	"webtextie/internal/obs/series"
	"webtextie/internal/obs/trace"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

func main() {
	hosts := flag.Int("hosts", 300, "number of hosts in the synthetic web")
	pages := flag.Int("pages", 3000, "stop after this many fetched pages (0 = frontier exhaustion)")
	seed := flag.Uint64("seed", 1, "generation seed")
	tunnel := flag.Int("tunnel", 1, "tunnelling depth (1 = stop at irrelevant pages)")
	threshold := flag.Float64("threshold", 0.5, "classifier relevance threshold")
	termScale := flag.Int("terms", 10, "seed-term catalogue scale divisor (Table 1 sizes / N)")
	metrics := flag.Bool("metrics", false, "dump the obs metric registry at exit")
	failureRate := flag.Float64("failure-rate", 0, "fraction of URLs with transient fetch failures")
	deadHosts := flag.Float64("dead-hosts", 0, "fraction of hosts that are persistently down")
	slowHosts := flag.Float64("slow-hosts", 0, "fraction of hosts with a per-fetch latency spike")
	rlHosts := flag.Float64("ratelimit-hosts", 0, "fraction of hosts throttling with 429 + retry-after")
	truncRate := flag.Float64("truncate-rate", 0, "per-(URL, attempt) probability of a truncated body")
	maxRetries := flag.Int("max-retries", crawler.DefaultConfig().MaxRetries,
		"retry budget per URL for transient failures (0 disables retrying)")
	breakerFails := flag.Int("breaker-failures", crawler.DefaultConfig().BreakerFailures,
		"consecutive host failures that open the circuit breaker (0 disables breakers)")
	breakerOpenMs := flag.Int("breaker-open-ms", crawler.DefaultConfig().BreakerOpenMs,
		"virtual ms an open breaker holds before its half-open probe")
	ckptFile := flag.String("checkpoint", "", "write a checkpoint to FILE after -checkpoint-cycles cycles and exit")
	ckptCycles := flag.Int("checkpoint-cycles", 5, "cycles to run before writing the -checkpoint file")
	resumeFile := flag.String("resume", "", "resume the crawl from a checkpoint FILE (same seed/flags as the original run)")
	shards := flag.Int("shards", 1, "partition the frontier by host hash into N shards crawling in parallel")
	shardWorkers := flag.Int("shard-workers", 0, "goroutines stepping shards per round (0 = one per shard; any value gives identical output)")
	supervise := flag.Bool("supervise", false, "run the shard fleet under the fault-tolerant supervisor (implied by any -shard-crash-* flag)")
	crashAt := flag.String("shard-crash-at", "", "inject crashes at comma-separated shard:round[:attempts] points (implies -supervise)")
	crashRate := flag.Float64("shard-crash-rate", 0, "per-(shard, round) injected crash probability (implies -supervise)")
	crashSeed := flag.Uint64("shard-crash-seed", 0, "seed for the random crash tier (0 = -seed)")
	crashMaxAttempts := flag.Int("shard-crash-max-attempts", 1, "max step attempts a random crash point persists for")
	recoveryBudget := flag.Int("shard-recovery-budget", supervisor.DefaultRecoveryBudget,
		"checkpoint restarts granted each shard before it is fenced (degraded mode)")
	stallFactor := flag.Float64("shard-stall-factor", 3,
		"flag a shard stalled when its round clock advance exceeds this multiple of the fleet median (0 disables)")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	crashPoints, err := synthweb.ParseCrashPoints(*crashAt)
	if err != nil {
		log.Fatal(err)
	}
	crashPlan := &synthweb.CrashPlan{
		Seed:        *crashSeed,
		Rate:        *crashRate,
		MaxAttempts: *crashMaxAttempts,
		Points:      crashPoints,
	}
	if crashPlan.Seed == 0 {
		crashPlan.Seed = *seed
	}
	if !crashPlan.Empty() {
		*supervise = true
	}
	if *supervise && *shards <= 1 {
		log.Fatal("crawl: -supervise and -shard-crash-* need a fleet; set -shards > 1")
	}

	lex := textgen.NewLexicon(rng.New(*seed), textgen.DefaultLexiconSizes(), 0.75)
	gen := textgen.NewGenerator(*seed+1, lex, textgen.DefaultProfiles())
	webCfg := synthweb.DefaultConfig()
	webCfg.Seed = *seed
	webCfg.NumHosts = *hosts
	webCfg.FailureRate = *failureRate
	webCfg.DeadHostShare = *deadHosts
	webCfg.SlowHostShare = *slowHosts
	webCfg.RateLimitShare = *rlHosts
	webCfg.TruncateRate = *truncRate
	web := synthweb.New(webCfg, gen)

	fmt.Printf("synthetic web: %d hosts\n", len(web.Hosts))

	clf := corpora.TrainClassifier(gen, *seed+2, 400)
	clf.Threshold = *threshold

	obsSetup := obsFlags.Setup(*seed)

	// A resumed crawl takes its frontier from the checkpoint, so seed
	// generation is skipped entirely: its URLs would go unused, and its
	// log records would dirty the sink before WithLog loads the
	// checkpoint's log snapshot (Load requires a fresh sink). A sharded
	// crawl logs into per-shard sinks, so its seed generation bypasses the
	// process sink.
	var seedURLs []string
	if *resumeFile == "" {
		catalog := seeds.BuildCatalog(*seed+3, lex, seeds.ScaledSizes(seeds.PaperSizes(), *termScale))
		var run seeds.Run
		if *shards > 1 {
			run = seeds.Generate(seeds.DefaultEngines(*seed+4, web), catalog)
		} else {
			run = seeds.GenerateLogged(seeds.DefaultEngines(*seed+4, web), catalog, obsSetup.Logs)
		}
		fmt.Printf("seed generation: %d terms -> %d queries -> %d seed URLs\n",
			catalog.Total(), run.QueriesIssued, len(run.SeedURLs))
		seedURLs = run.SeedURLs
	}

	cfg := crawler.DefaultConfig()
	cfg.MaxPages = *pages
	cfg.Tunnelling = *tunnel
	cfg.MaxRetries = *maxRetries
	cfg.BreakerFailures = *breakerFails
	cfg.BreakerOpenMs = *breakerOpenMs

	if *shards > 1 {
		if *obsFlags.DebugAddr != "" {
			log.Fatal("crawl: -debug-addr is not available with -shards > 1 " +
				"(live pillars are per-shard; use the merged end-of-run exports)")
		}
		runSharded(shardedOpts{
			seed:         *seed,
			webCfg:       webCfg,
			crawlCfg:     cfg,
			shards:       *shards,
			workers:      *shardWorkers,
			clf:          clf,
			seedURLs:     seedURLs,
			ckptFile:     *ckptFile,
			ckptRounds:   *ckptCycles,
			resumeFile:   *resumeFile,
			printMetrics: *metrics,
			obsSetup:     obsSetup,
			supervise:    *supervise,
			crash:        crashPlan,
			budget:       *recoveryBudget,
			stallFactor:  *stallFactor,
		})
		return
	}

	// wire attaches every flagged observability surface to a constructed
	// crawler and starts the live debug server around it.
	wire := func(c *crawler.Crawler) {
		c.WithMetrics(obs.Default())
		if obsSetup.Traces != nil {
			c.WithTrace(obsSetup.Traces)
		}
		if obsSetup.Logs != nil {
			c.WithLog(obsSetup.Logs)
		}
		if obsSetup.Series != nil {
			c.WithSeries(obsSetup.Series)
		}
		if obsSetup.Prof != nil {
			c.WithProf(obsSetup.Prof)
		}
		addr, err := obsSetup.Serve(func() any { return c.LiveStats() })
		if err != nil {
			log.Fatal(err)
		}
		if addr != "" {
			fmt.Printf("debug server listening on http://%s/\n", addr)
		}
	}
	// finish prints the observability end-of-run summary and exports.
	finish := func() {
		summary, err := obsSetup.Finish()
		if summary != "" {
			fmt.Println()
			fmt.Print(summary)
		}
		if err != nil {
			log.Fatal(err)
		}
	}

	var res *crawler.Result
	switch {
	case *resumeFile != "":
		data, err := os.ReadFile(*resumeFile)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := crawler.UnmarshalCheckpoint(data)
		if err != nil {
			log.Fatal(err)
		}
		c, err := crawler.Resume(cfg, web, clf, cp)
		if err != nil {
			log.Fatal(err)
		}
		wire(c)
		fmt.Printf("resumed from %s at cycle %d (%d pages fetched)\n",
			*resumeFile, cp.Stats.Cycles, cp.Stats.Fetched)
		for c.Step() {
		}
		res = c.Finish()
	case *ckptFile != "":
		c := crawler.New(cfg, web, clf)
		wire(c)
		c.Seed(seedURLs)
		for i := 0; i < *ckptCycles && c.Step(); i++ {
		}
		cp := c.Checkpoint()
		data, err := cp.Marshal()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*ckptFile, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint after %d cycles (%d pages) written to %s (%d bytes)\n",
			cp.Stats.Cycles, cp.Stats.Fetched, *ckptFile, len(data))
		fmt.Printf("continue with: crawl -resume %s (plus the same seed/fault/resilience flags)\n", *ckptFile)
		finish()
		return
	default:
		c := crawler.New(cfg, web, clf)
		wire(c)
		res = c.Run(seedURLs)
	}
	printReport(res.Stats, res.LinkDB)

	finish()

	if *metrics {
		fmt.Println("\nmetric registry (obs)")
		fmt.Print(obs.Default().Snapshot().Text())
	}
}

// printReport renders the §4.1 crawl statistics and the Table 2 PageRank
// top-10 — the shared tail of the unsharded and sharded paths.
func printReport(st crawler.Stats, ldb *crawldb.LinkDB) {
	fmt.Println("\ncrawl statistics (§4.1)")
	fmt.Printf("  fetched:            %d pages in %d cycles\n", st.Fetched, st.Cycles)
	fmt.Printf("  harvest rate:       %.1f%% by bytes, %.1f%% by docs (paper: 38%% / 19%%)\n",
		100*st.HarvestRate(), 100*st.HarvestRateDocs())
	fmt.Printf("  relevant corpus:    %d docs, %d bytes\n", st.Relevant, st.RelevantBytes)
	fmt.Printf("  irrelevant corpus:  %d docs, %d bytes\n", st.Irrelevant, st.IrrelevantBytes)
	fmt.Printf("  filters:            MIME %.1f%%, language %.1f%%, length %.1f%% (paper: 9.5/14/17)\n",
		100*float64(st.FilteredMIME)/float64(st.Fetched),
		100*float64(st.FilteredLang)/float64(st.Fetched),
		100*float64(st.FilteredLength)/float64(st.Fetched))
	fmt.Printf("  download rate:      %.2f docs/s simulated (paper: 3-4)\n", st.DocsPerSecond())
	fmt.Printf("  frontier emptied:   %v\n", st.FrontierEmptied)
	fmt.Printf("  robots blocks:      %d\n", st.RobotsBlocked)
	fmt.Printf("  retries:            %d scheduled, %d exhausted, %d rate-limited fetches\n",
		st.Retries, st.RetriesExhausted, st.RateLimited)
	fmt.Printf("  circuit breakers:   %d opens, %d deferred fetches\n",
		st.BreakerOpens, st.BreakerDeferred)

	loc := graph.Locality(ldb)
	fmt.Printf("  link locality:      %.1f%% intra-host (%d edges)\n",
		100*loc.IntraShare(), ldb.Edges())

	g := graph.FromLinkDB(ldb)
	fmt.Println("\ntop-10 domains by PageRank (Table 2)")
	for _, h := range graph.TopHosts(g.PageRank(0.85, 100, 1e-10), 10) {
		fmt.Printf("  %-30s %.5f\n", h.Host, h.Rank)
	}
}

// mergeSnap folds an optional crawl-pillar snapshot with the always-on
// supervision snapshot for doctor input.
func mergeSnap[T any](crawl, sup *T, merge func(...*T) *T) *T {
	if crawl == nil {
		return sup
	}
	return merge(crawl, sup)
}

// shardedOpts carries the flag state into the -shards > 1 path.
type shardedOpts struct {
	seed         uint64
	webCfg       synthweb.Config
	crawlCfg     crawler.Config
	shards       int
	workers      int
	clf          *classify.NaiveBayes
	seedURLs     []string
	ckptFile     string
	ckptRounds   int
	resumeFile   string
	printMetrics bool
	obsSetup     *cliobs.Setup
	supervise    bool
	crash        *synthweb.CrashPlan
	budget       int
	stallFactor  float64
}

// runSharded drives the fleet: partitioned frontier, BSP rounds, merged
// exports. Each shard gets a private web instance (fresh generator, same
// seeds) so no mutable state crosses shard boundaries; the degree of
// parallelism cannot change any output byte.
func runSharded(o shardedOpts) {
	newWeb := func() *synthweb.Web {
		lx := textgen.NewLexicon(rng.New(o.seed), textgen.DefaultLexiconSizes(), 0.75)
		gn := textgen.NewGenerator(o.seed+1, lx, textgen.DefaultProfiles())
		return synthweb.New(o.webCfg, gn)
	}
	scfg := shard.Config{Crawl: o.crawlCfg, Shards: o.shards, Parallelism: o.workers}

	var runner *shard.Runner
	if o.resumeFile != "" {
		data, err := os.ReadFile(o.resumeFile)
		if err != nil {
			log.Fatal(err)
		}
		cp, err := shard.UnmarshalCheckpoint(data)
		if err != nil {
			log.Fatal(err)
		}
		runner, err = shard.Resume(scfg, newWeb, o.clf, cp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resumed fleet of %d shards from %s at round %d\n",
			cp.Shards, o.resumeFile, cp.Rounds)
	} else {
		var err error
		runner, err = shard.New(scfg, newWeb, o.clf)
		if err != nil {
			log.Fatal(err)
		}
	}
	if o.obsSetup.Traces != nil {
		runner.WithTrace(trace.DefaultConfig(o.seed))
	}
	if o.obsSetup.Logs != nil {
		runner.WithLog(evlog.DefaultConfig(o.seed))
	}
	if o.obsSetup.Series != nil {
		runner.WithSeries(series.DefaultConfig())
	}
	if profCfg, on := o.obsSetup.ProfConfig(); on {
		runner.WithProf(profCfg)
	}
	if o.resumeFile == "" {
		runner.Seed(o.seedURLs)
	}

	// round advances the fleet one superstep: supervised (panic recovery,
	// checkpoint restart, stall detection, fencing) or plain.
	var sup *supervisor.Supervisor
	round := runner.Round
	if o.supervise {
		sup = supervisor.New(runner, supervisor.Config{
			RecoveryBudget: o.budget,
			StallFactor:    o.stallFactor,
			Crash:          o.crash,
			Seed:           o.seed,
		})
		round = func() bool {
			cont, err := sup.Round()
			if err != nil {
				log.Fatal(err)
			}
			return cont
		}
	}

	if o.ckptFile != "" {
		for i := 0; i < o.ckptRounds && round(); i++ {
		}
		cp, err := runner.Checkpoint()
		if err != nil {
			log.Fatal(err)
		}
		data, err := cp.Marshal()
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(o.ckptFile, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fleet checkpoint after %d rounds written to %s (%d shards, %d bytes)\n",
			cp.Rounds, o.ckptFile, cp.Shards, len(data))
		fmt.Printf("continue with: crawl -resume %s -shards %d (plus the same seed/fault/resilience flags)\n",
			o.ckptFile, cp.Shards)
		return
	}

	for round() {
	}
	res := runner.Finish()
	workers := o.workers
	if workers <= 0 {
		workers = o.shards
	}
	fmt.Printf("sharded crawl: %d shards, %d workers, %d rounds\n",
		o.shards, workers, res.Rounds)

	// The recovery summary: what supervision did, and — loudly — which
	// host-hash partitions a degraded run is missing.
	var rep *supervisor.Report
	if sup != nil {
		rep = sup.Report()
		fmt.Println()
		if rep.Quiet() {
			fmt.Println("fleet recovery: clean run, no supervisor intervention")
		} else {
			fmt.Print(rep.Summary(res.Degraded))
		}
	}
	printReport(res.Stats, res.LinkDB)

	// Export files carry the crawl pillars only (byte-identical to an
	// unsupervised run); the doctor diagnoses crawl and supervision
	// pillars together. Fleet runs also hand the doctor the unmerged
	// per-shard profiles so cross-shard rules (stage-cost-skew) can see
	// the partition balance the merged profile averages away.
	var shardProfs []*prof.Snapshot
	if res.Profile != nil {
		shardProfs = make([]*prof.Snapshot, len(res.PerShard))
		for i, pr := range res.PerShard {
			shardProfs[i] = pr.Profile
		}
	}
	var diag *doctor.Input
	if rep != nil {
		diag = &doctor.Input{
			Metrics:       res.Metrics.Merge(rep.Metrics),
			Traces:        mergeSnap(res.Traces, rep.Traces, trace.Merge),
			Logs:          mergeSnap(res.Logs, rep.Logs, evlog.Merge),
			Series:        res.Series,
			Profile:       res.Profile,
			ShardProfiles: shardProfs,
		}
	} else if shardProfs != nil {
		diag = &doctor.Input{
			Metrics:       res.Metrics,
			Traces:        res.Traces,
			Logs:          res.Logs,
			Series:        res.Series,
			Profile:       res.Profile,
			ShardProfiles: shardProfs,
		}
	}
	summary, err := o.obsSetup.FinishWithDoctor(res.Traces, res.Logs, res.Series, res.Profile, res.Metrics, diag)
	if summary != "" {
		fmt.Println()
		fmt.Print(summary)
	}
	if err != nil {
		log.Fatal(err)
	}

	if o.printMetrics {
		fmt.Println("\nmetric registry (merged shards)")
		fmt.Print(res.Metrics.Text())
	}
}
