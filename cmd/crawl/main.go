// Command crawl runs the focused crawler (§2) against the synthetic web
// and prints the §4.1 crawl statistics.
//
// Usage:
//
//	crawl [-hosts N] [-pages N] [-seed N] [-tunnel N] [-threshold P] [-metrics]
package main

import (
	"flag"
	"fmt"

	"webtextie/internal/corpora"
	"webtextie/internal/crawler"
	"webtextie/internal/graph"
	"webtextie/internal/obs"
	"webtextie/internal/rng"
	"webtextie/internal/seeds"
	"webtextie/internal/synthweb"
	"webtextie/internal/textgen"
)

func main() {
	hosts := flag.Int("hosts", 300, "number of hosts in the synthetic web")
	pages := flag.Int("pages", 3000, "stop after this many fetched pages (0 = frontier exhaustion)")
	seed := flag.Uint64("seed", 1, "generation seed")
	tunnel := flag.Int("tunnel", 1, "tunnelling depth (1 = stop at irrelevant pages)")
	threshold := flag.Float64("threshold", 0.5, "classifier relevance threshold")
	termScale := flag.Int("terms", 10, "seed-term catalogue scale divisor (Table 1 sizes / N)")
	metrics := flag.Bool("metrics", false, "dump the obs metric registry at exit")
	flag.Parse()

	lex := textgen.NewLexicon(rng.New(*seed), textgen.DefaultLexiconSizes(), 0.75)
	gen := textgen.NewGenerator(*seed+1, lex, textgen.DefaultProfiles())
	webCfg := synthweb.DefaultConfig()
	webCfg.Seed = *seed
	webCfg.NumHosts = *hosts
	web := synthweb.New(webCfg, gen)

	fmt.Printf("synthetic web: %d hosts\n", len(web.Hosts))

	clf := corpora.TrainClassifier(gen, *seed+2, 400)
	clf.Threshold = *threshold

	catalog := seeds.BuildCatalog(*seed+3, lex, seeds.ScaledSizes(seeds.PaperSizes(), *termScale))
	run := seeds.Generate(seeds.DefaultEngines(*seed+4, web), catalog)
	fmt.Printf("seed generation: %d terms -> %d queries -> %d seed URLs\n",
		catalog.Total(), run.QueriesIssued, len(run.SeedURLs))

	cfg := crawler.DefaultConfig()
	cfg.MaxPages = *pages
	cfg.Tunnelling = *tunnel
	res := crawler.New(cfg, web, clf).WithMetrics(obs.Default()).Run(run.SeedURLs)
	st := res.Stats

	fmt.Println("\ncrawl statistics (§4.1)")
	fmt.Printf("  fetched:            %d pages in %d cycles\n", st.Fetched, st.Cycles)
	fmt.Printf("  harvest rate:       %.1f%% by bytes, %.1f%% by docs (paper: 38%% / 19%%)\n",
		100*st.HarvestRate(), 100*st.HarvestRateDocs())
	fmt.Printf("  relevant corpus:    %d docs, %d bytes\n", st.Relevant, st.RelevantBytes)
	fmt.Printf("  irrelevant corpus:  %d docs, %d bytes\n", st.Irrelevant, st.IrrelevantBytes)
	fmt.Printf("  filters:            MIME %.1f%%, language %.1f%%, length %.1f%% (paper: 9.5/14/17)\n",
		100*float64(st.FilteredMIME)/float64(st.Fetched),
		100*float64(st.FilteredLang)/float64(st.Fetched),
		100*float64(st.FilteredLength)/float64(st.Fetched))
	fmt.Printf("  download rate:      %.2f docs/s simulated (paper: 3-4)\n", st.DocsPerSecond())
	fmt.Printf("  frontier emptied:   %v\n", st.FrontierEmptied)
	fmt.Printf("  robots blocks:      %d\n", st.RobotsBlocked)

	loc := graph.Locality(res.LinkDB)
	fmt.Printf("  link locality:      %.1f%% intra-host (%d edges)\n",
		100*loc.IntraShare(), res.LinkDB.Edges())

	g := graph.FromLinkDB(res.LinkDB)
	fmt.Println("\ntop-10 domains by PageRank (Table 2)")
	for _, h := range graph.TopHosts(g.PageRank(0.85, 100, 1e-10), 10) {
		fmt.Printf("  %-30s %.5f\n", h.Host, h.Rank)
	}

	if *metrics {
		fmt.Println("\nmetric registry (obs)")
		fmt.Print(obs.Default().Snapshot().Text())
	}
}
