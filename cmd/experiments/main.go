// Command experiments regenerates every table and figure of the paper's
// evaluation section (§4), printing paper-reported values next to this
// build's measurements.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-scale N] [-metrics]
//	            [-trace] [-trace-out FILE] [-trace-chrome FILE]
//	            [-log] [-log-out FILE] [-doctor] [-debug-addr HOST:PORT]
//	            [experiment ...]
//
// Experiments: table1 seeds crawl classifier boilerplate table2 table3
// fig3 fig4 fig5 warstory fig6 pronouns table4 fig7 fig8 jsd all
// (default: all).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"webtextie"
	"webtextie/internal/obs"
	"webtextie/internal/obs/cliobs"
)

func main() {
	quick := flag.Bool("quick", false, "use the reduced quick configuration")
	seed := flag.Uint64("seed", 0, "override the generation seed (0 = default)")
	scale := flag.Int("scale", 0, "override the corpus scale factor (0 = default)")
	metrics := flag.Bool("metrics", false, "dump the obs metric registry at exit")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	cfg := webtextie.DefaultConfig()
	if *quick {
		cfg = webtextie.QuickConfig()
	}
	if *seed != 0 {
		cfg.Corpora.Seed = *seed
	}
	if *scale != 0 {
		cfg.Corpora.ScaleFactor = *scale
	}

	obsSetup := obsFlags.Setup(cfg.Corpora.Seed)
	cfg.ExecTrace = obsSetup.Traces
	cfg.ExecLog = obsSetup.Logs
	cfg.ExecProf = obsSetup.Prof
	var current atomic.Value
	current.Store("starting")
	addr, err := obsSetup.Serve(func() any {
		return map[string]any{"experiment": current.Load()}
	})
	if err != nil {
		log.Fatal(err)
	}
	if addr != "" {
		fmt.Printf("debug server listening on http://%s/\n", addr)
	}

	exp := webtextie.NewExperiments(cfg)
	runners := map[string]func() string{
		"table1":      exp.Table1,
		"seeds":       exp.SeedsExperiment,
		"crawl":       exp.CrawlStats,
		"classifier":  exp.ClassifierQuality,
		"boilerplate": exp.BoilerplateQuality,
		"table2":      exp.Table2,
		"table3":      exp.Table3,
		"fig3":        exp.Fig3,
		"fig4":        exp.Fig4,
		"fig5":        exp.Fig5,
		"warstory":    exp.WarStory,
		"fig6":        exp.Fig6,
		"pronouns":    exp.Pronouns,
		"table4":      exp.Table4,
		"fig7":        exp.Fig7,
		"fig8":        exp.Fig8,
		"jsd":         exp.JSDReport,
		"relations":   exp.RelationsReport,
		"extensions":  exp.ExtensionsReport,
		"resilience":  exp.ResilienceReport,
	}
	order := []string{
		"table1", "seeds", "crawl", "classifier", "boilerplate", "table2",
		"table3", "fig3", "fig4", "fig5", "warstory", "fig6", "pronouns",
		"table4", "fig7", "fig8", "jsd", "relations", "extensions",
		"resilience",
	}

	wanted := flag.Args()
	if len(wanted) == 0 || (len(wanted) == 1 && wanted[0] == "all") {
		wanted = order
	}
	for _, name := range wanted {
		run, ok := runners[name]
		if !ok {
			var known []string
			for k := range runners {
				known = append(known, k)
			}
			sort.Strings(known)
			fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %v\n", name, known)
			os.Exit(2)
		}
		current.Store(name)
		sp := obs.Default().StartSpan("experiments.run")
		fmt.Println(run())
		fmt.Printf("[%s completed in %s]\n\n", name, sp.End().Round(time.Millisecond))
	}
	current.Store("done")

	summary, err := obsSetup.Finish()
	if summary != "" {
		fmt.Print(summary)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *metrics {
		fmt.Println("metric registry (obs)")
		fmt.Print(obs.Default().Snapshot().Text())
	}
}
