// Command benchjson converts `go test -bench` output on stdin into the
// committed benchmark-baseline format (BENCH_BASELINE.json):
//
//	go test -run=NONE -bench . -benchtime 1x | go run ./cmd/benchjson > BENCH_BASELINE.json
//
// Each benchmark line ("BenchmarkName-P  iters  v1 unit1  v2 unit2 ...")
// becomes one entry keyed by name with its metric map; custom units from
// b.ReportMetric are preserved alongside ns/op.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the file-level structure of BENCH_BASELINE.json.
type Baseline struct {
	GoVersion  string           `json:"go_version"`
	GoOS       string           `json:"goos"`
	GoArch     string           `json:"goarch"`
	Benchmarks []BenchmarkEntry `json:"benchmarks"`
}

// BenchmarkEntry is one benchmark result.
type BenchmarkEntry struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func parseLine(line string) (BenchmarkEntry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchmarkEntry{}, false
	}
	e := BenchmarkEntry{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name, e.Procs = e.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchmarkEntry{}, false
	}
	e.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

func main() {
	b := Baseline{GoVersion: runtime.Version(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			b.Benchmarks = append(b.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool { return b.Benchmarks[i].Name < b.Benchmarks[j].Name })
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
