// Command benchjson converts `go test -bench` output on stdin into the
// committed benchmark-baseline format (BENCH_BASELINE.json):
//
//	go test -run=NONE -bench . -benchtime 1x | go run ./cmd/benchjson > BENCH_BASELINE.json
//
// Each benchmark line ("BenchmarkName-P  iters  v1 unit1  v2 unit2 ...")
// becomes one entry keyed by name with its metric map; custom units from
// b.ReportMetric are preserved alongside ns/op.
//
// The compare mode diffs two committed baselines metric by metric:
//
//	go run ./cmd/benchjson compare [-max-regress PCT] BENCH_PR8.json BENCH_PR9.json
//
// printing old value, new value, and percentage delta per shared
// benchmark metric, plus the benchmarks present on only one side. Output
// order is deterministic (benchmark name, then metric name). With
// -max-regress, compare exits non-zero when any shared metric regressed
// by more than PCT percent; direction comes from the unit ("/s" rates
// are higher-better, ns/op / B/op / allocs/op are lower-better, anything
// else is informational and never gates).
//
// The profdiff mode diffs two cost-profile JSON exports (the -prof-out
// files of internal/obs/prof) scope by scope:
//
//	go run ./cmd/benchjson profdiff before.json after.json
//
// printing self-ms old/new/delta per shared scope plus scopes present on
// only one side, in scope-name order.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"webtextie/internal/obs/prof"
)

// Baseline is the file-level structure of BENCH_BASELINE.json.
type Baseline struct {
	GoVersion  string           `json:"go_version"`
	GoOS       string           `json:"goos"`
	GoArch     string           `json:"goarch"`
	Benchmarks []BenchmarkEntry `json:"benchmarks"`
}

// BenchmarkEntry is one benchmark result.
type BenchmarkEntry struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func parseLine(line string) (BenchmarkEntry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchmarkEntry{}, false
	}
	e := BenchmarkEntry{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name, e.Procs = e.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchmarkEntry{}, false
	}
	e.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

// loadBaseline reads and validates one committed baseline file.
func loadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("%s: no benchmarks", path)
	}
	for _, e := range b.Benchmarks {
		if !strings.HasPrefix(e.Name, "Benchmark") {
			return b, fmt.Errorf("%s: entry %q is not a benchmark name", path, e.Name)
		}
		if len(e.Metrics) == 0 {
			return b, fmt.Errorf("%s: %s has no metrics", path, e.Name)
		}
	}
	return b, nil
}

// metricDirection classifies a benchmark unit: +1 when higher is better
// ("/s" rates), -1 when lower is better (time, bytes, allocations), 0
// when the direction is unknown (informational only — never gated).
func metricDirection(unit string) int {
	switch {
	case strings.HasSuffix(unit, "/s"):
		return 1
	case unit == "ns/op" || unit == "B/op" || unit == "allocs/op":
		return -1
	}
	return 0
}

// compare renders the metric-by-metric diff of two baseline files and
// returns the shared metrics that regressed by more than maxRegress
// percent (none when maxRegress < 0).
func compare(w io.Writer, oldPath, newPath string, maxRegress float64) ([]string, error) {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		return nil, err
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		return nil, err
	}
	var regressions []string
	oldByName := map[string]BenchmarkEntry{}
	for _, e := range oldB.Benchmarks {
		oldByName[e.Name] = e
	}
	fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	seen := map[string]bool{}
	for _, e := range newB.Benchmarks {
		o, shared := oldByName[e.Name]
		if !shared {
			fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", e.Name, "-", "-", "-", "added")
			continue
		}
		seen[e.Name] = true
		metrics := make([]string, 0, len(e.Metrics))
		for m := range e.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			nv := e.Metrics[m]
			ov, ok := o.Metrics[m]
			switch {
			case !ok:
				fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", e.Name, m, "-", fmtMetric(nv), "added")
			case ov == 0:
				fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", e.Name, m, fmtMetric(ov), fmtMetric(nv), "n/a")
			default:
				fmt.Fprintf(w, "%-60s %-12s %14s %14s %+8.1f%%\n", e.Name, m, fmtMetric(ov), fmtMetric(nv), 100*(nv-ov)/ov)
				if maxRegress >= 0 {
					// A regression moves against the unit's good
					// direction by more than the threshold.
					worse := float64(metricDirection(m)) * 100 * (ov - nv) / ov
					if worse > maxRegress {
						regressions = append(regressions,
							fmt.Sprintf("%s %s: %s -> %s (%.1f%% worse, max %.1f%%)",
								e.Name, m, fmtMetric(ov), fmtMetric(nv), worse, maxRegress))
					}
				}
			}
		}
	}
	for _, e := range oldB.Benchmarks {
		if !seen[e.Name] {
			fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", e.Name, "-", "-", "-", "removed")
		}
	}
	return regressions, nil
}

// loadProfExport reads one -prof-out JSON file (the prof.Export shape).
func loadProfExport(path string) (prof.Export, error) {
	var e prof.Export
	data, err := os.ReadFile(path)
	if err != nil {
		return e, err
	}
	if err := json.Unmarshal(data, &e); err != nil {
		return e, fmt.Errorf("%s: %w", path, err)
	}
	return e, nil
}

// profdiff renders the scope-by-scope self-cost diff of two profile
// exports.
func profdiff(w io.Writer, oldPath, newPath string) error {
	oldE, err := loadProfExport(oldPath)
	if err != nil {
		return err
	}
	newE, err := loadProfExport(newPath)
	if err != nil {
		return err
	}
	oldByName := map[string]prof.ExportScope{}
	for _, s := range oldE.Scopes {
		oldByName[s.Name] = s
	}
	fmt.Fprintf(w, "%-40s %12s %12s %9s\n", "scope", "old_self_ms", "new_self_ms", "delta")
	seen := map[string]bool{}
	for _, s := range newE.Scopes {
		o, shared := oldByName[s.Name]
		switch {
		case !shared:
			fmt.Fprintf(w, "%-40s %12s %12d %9s\n", s.Name, "-", s.SelfMs, "added")
		case o.SelfMs == 0:
			fmt.Fprintf(w, "%-40s %12d %12d %9s\n", s.Name, o.SelfMs, s.SelfMs, "n/a")
		default:
			fmt.Fprintf(w, "%-40s %12d %12d %+8.1f%%\n", s.Name, o.SelfMs, s.SelfMs,
				100*float64(s.SelfMs-o.SelfMs)/float64(o.SelfMs))
		}
		seen[s.Name] = true
	}
	for _, s := range oldE.Scopes {
		if !seen[s.Name] {
			fmt.Fprintf(w, "%-40s %12d %12s %9s\n", s.Name, s.SelfMs, "-", "removed")
		}
	}
	if oldE.TotalVirtualMs != 0 {
		fmt.Fprintf(w, "%-40s %12d %12d %+8.1f%%\n", "TOTAL", oldE.TotalVirtualMs, newE.TotalVirtualMs,
			100*float64(newE.TotalVirtualMs-oldE.TotalVirtualMs)/float64(oldE.TotalVirtualMs))
	} else {
		fmt.Fprintf(w, "%-40s %12d %12d %9s\n", "TOTAL", oldE.TotalVirtualMs, newE.TotalVirtualMs, "n/a")
	}
	return nil
}

// fmtMetric renders a metric value compactly: integers without a point,
// everything else with up to four significant decimals trimmed.
func fmtMetric(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		maxRegress := fs.Float64("max-regress", -1,
			"exit non-zero when any shared metric regresses by more than this percentage")
		fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson compare [-max-regress PCT] OLD.json NEW.json")
			os.Exit(2)
		}
		regressions, err := compare(os.Stdout, fs.Arg(0), fs.Arg(1), *maxRegress)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if len(regressions) > 0 {
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "benchjson: regression:", r)
			}
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "profdiff" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchjson profdiff OLD.json NEW.json")
			os.Exit(2)
		}
		if err := profdiff(os.Stdout, os.Args[2], os.Args[3]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	b := Baseline{GoVersion: runtime.Version(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			b.Benchmarks = append(b.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool { return b.Benchmarks[i].Name < b.Benchmarks[j].Name })
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
