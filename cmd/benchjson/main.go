// Command benchjson converts `go test -bench` output on stdin into the
// committed benchmark-baseline format (BENCH_BASELINE.json):
//
//	go test -run=NONE -bench . -benchtime 1x | go run ./cmd/benchjson > BENCH_BASELINE.json
//
// Each benchmark line ("BenchmarkName-P  iters  v1 unit1  v2 unit2 ...")
// becomes one entry keyed by name with its metric map; custom units from
// b.ReportMetric are preserved alongside ns/op.
//
// The compare mode diffs two committed baselines metric by metric:
//
//	go run ./cmd/benchjson compare BENCH_PR8.json BENCH_PR9.json
//
// printing old value, new value, and percentage delta per shared
// benchmark metric, plus the benchmarks present on only one side. Output
// order is deterministic (benchmark name, then metric name).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the file-level structure of BENCH_BASELINE.json.
type Baseline struct {
	GoVersion  string           `json:"go_version"`
	GoOS       string           `json:"goos"`
	GoArch     string           `json:"goarch"`
	Benchmarks []BenchmarkEntry `json:"benchmarks"`
}

// BenchmarkEntry is one benchmark result.
type BenchmarkEntry struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func parseLine(line string) (BenchmarkEntry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return BenchmarkEntry{}, false
	}
	e := BenchmarkEntry{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndex(e.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(e.Name[i+1:]); err == nil {
			e.Name, e.Procs = e.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return BenchmarkEntry{}, false
	}
	e.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		e.Metrics[fields[i+1]] = v
	}
	return e, true
}

// loadBaseline reads and validates one committed baseline file.
func loadBaseline(path string) (Baseline, error) {
	var b Baseline
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if len(b.Benchmarks) == 0 {
		return b, fmt.Errorf("%s: no benchmarks", path)
	}
	for _, e := range b.Benchmarks {
		if !strings.HasPrefix(e.Name, "Benchmark") {
			return b, fmt.Errorf("%s: entry %q is not a benchmark name", path, e.Name)
		}
		if len(e.Metrics) == 0 {
			return b, fmt.Errorf("%s: %s has no metrics", path, e.Name)
		}
	}
	return b, nil
}

// compare renders the metric-by-metric diff of two baseline files.
func compare(w io.Writer, oldPath, newPath string) error {
	oldB, err := loadBaseline(oldPath)
	if err != nil {
		return err
	}
	newB, err := loadBaseline(newPath)
	if err != nil {
		return err
	}
	oldByName := map[string]BenchmarkEntry{}
	for _, e := range oldB.Benchmarks {
		oldByName[e.Name] = e
	}
	fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", "benchmark", "metric", "old", "new", "delta")
	seen := map[string]bool{}
	for _, e := range newB.Benchmarks {
		o, shared := oldByName[e.Name]
		if !shared {
			fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", e.Name, "-", "-", "-", "added")
			continue
		}
		seen[e.Name] = true
		metrics := make([]string, 0, len(e.Metrics))
		for m := range e.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			nv := e.Metrics[m]
			ov, ok := o.Metrics[m]
			switch {
			case !ok:
				fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", e.Name, m, "-", fmtMetric(nv), "added")
			case ov == 0:
				fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", e.Name, m, fmtMetric(ov), fmtMetric(nv), "n/a")
			default:
				fmt.Fprintf(w, "%-60s %-12s %14s %14s %+8.1f%%\n", e.Name, m, fmtMetric(ov), fmtMetric(nv), 100*(nv-ov)/ov)
			}
		}
	}
	for _, e := range oldB.Benchmarks {
		if !seen[e.Name] {
			fmt.Fprintf(w, "%-60s %-12s %14s %14s %9s\n", e.Name, "-", "-", "-", "removed")
		}
	}
	return nil
}

// fmtMetric renders a metric value compactly: integers without a point,
// everything else with up to four significant decimals trimmed.
func fmtMetric(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		if len(os.Args) != 4 {
			fmt.Fprintln(os.Stderr, "usage: benchjson compare OLD.json NEW.json")
			os.Exit(2)
		}
		if err := compare(os.Stdout, os.Args[2], os.Args[3]); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	b := Baseline{GoVersion: runtime.Version(), GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if e, ok := parseLine(sc.Text()); ok {
			b.Benchmarks = append(b.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sort.Slice(b.Benchmarks, func(i, j int) bool { return b.Benchmarks[i].Name < b.Benchmarks[j].Name })
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))
}
