package main

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestLoadCommittedBaselines loads every BENCH_*.json committed at the
// repo root through the compare-mode loader: each must parse, hold at
// least one benchmark, keep its entries name-sorted, and report ns/op.
func TestLoadCommittedBaselines(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 7 {
		t.Fatalf("found %d committed baselines, want at least 7 (BASELINE + PR3..PR8)", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			b, err := loadBaseline(path)
			if err != nil {
				t.Fatal(err)
			}
			if b.GoVersion == "" || b.GoOS == "" || b.GoArch == "" {
				t.Errorf("missing environment header: %+v", b)
			}
			if !sort.SliceIsSorted(b.Benchmarks, func(i, j int) bool {
				return b.Benchmarks[i].Name < b.Benchmarks[j].Name
			}) {
				t.Error("benchmarks not sorted by name")
			}
			for _, e := range b.Benchmarks {
				if e.Iterations < 1 {
					t.Errorf("%s: iterations %d < 1", e.Name, e.Iterations)
				}
				if _, ok := e.Metrics["ns/op"]; !ok {
					t.Errorf("%s: no ns/op metric", e.Name)
				}
			}
		})
	}
}

// TestLoadBaselineRejectsGarbage pins the loader's validation errors.
func TestLoadBaselineRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name, content, wantErr string
	}{
		{"notjson.json", "not json at all", "invalid character"},
		{"empty.json", `{"go_version":"go1.24.0","goos":"linux","goarch":"amd64","benchmarks":[]}`, "no benchmarks"},
		{"badname.json", `{"benchmarks":[{"name":"NotABench","iterations":1,"metrics":{"ns/op":1}}]}`, "not a benchmark name"},
		{"nometrics.json", `{"benchmarks":[{"name":"BenchmarkX","iterations":1,"metrics":{}}]}`, "no metrics"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := loadBaseline(write(tc.name, tc.content))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
	if _, err := loadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}

// TestCompareOutput diffs two synthetic baselines and checks the table:
// shared metrics get signed percentage deltas, metrics and benchmarks on
// one side only are labelled added/removed, zero old values are n/a.
func TestCompareOutput(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	os.WriteFile(oldPath, []byte(`{"go_version":"go1.24.0","goos":"linux","goarch":"amd64","benchmarks":[
		{"name":"BenchmarkGone","iterations":1,"metrics":{"ns/op":5}},
		{"name":"BenchmarkShared","iterations":1,"metrics":{"ns/op":1000,"vdocs/s":10,"zero":0}}]}`), 0o644)
	os.WriteFile(newPath, []byte(`{"go_version":"go1.24.0","goos":"linux","goarch":"amd64","benchmarks":[
		{"name":"BenchmarkFresh","iterations":1,"metrics":{"ns/op":7}},
		{"name":"BenchmarkShared","iterations":1,"metrics":{"ns/op":900,"vdocs/s":12,"zero":3,"extra":1}}]}`), 0o644)

	var b strings.Builder
	if _, err := compare(&b, oldPath, newPath, -1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"-10.0%",  // ns/op 1000 -> 900
		"+20.0%",  // vdocs/s 10 -> 12
		"n/a",     // zero 0 -> 3
		"added",   // BenchmarkFresh and the extra metric
		"removed", // BenchmarkGone
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: same inputs, same bytes.
	var again strings.Builder
	if _, err := compare(&again, oldPath, newPath, -1); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("compare output not byte-stable across calls")
	}
}

// TestParseLine pins the bench-line parser the convert mode feeds from.
func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkSupervisedShardCrawlDoP4-8   1   12290031421 ns/op   13216 fetched   15.63 vdocs/s")
	if !ok {
		t.Fatal("line did not parse")
	}
	if e.Name != "BenchmarkSupervisedShardCrawlDoP4" || e.Procs != 8 || e.Iterations != 1 {
		t.Errorf("entry header = %+v", e)
	}
	if e.Metrics["ns/op"] != 12290031421 || e.Metrics["fetched"] != 13216 || e.Metrics["vdocs/s"] != 15.63 {
		t.Errorf("metrics = %v", e.Metrics)
	}
	if _, ok := parseLine("ok   webtextie/internal/crawler 1.2s"); ok {
		t.Error("non-benchmark line parsed")
	}
}

// TestCompareMaxRegress pins the regression gate: direction comes from
// the unit, the threshold is a percentage of the old value, and unknown
// units never gate.
func TestCompareMaxRegress(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	os.WriteFile(oldPath, []byte(`{"go_version":"go1.24.0","goos":"linux","goarch":"amd64","benchmarks":[
		{"name":"BenchmarkShared","iterations":1,"metrics":{"ns/op":1000,"vdocs/s":100,"mystery":100}}]}`), 0o644)
	// ns/op regresses 10% (lower-better, got higher), vdocs/s regresses
	// 20% (higher-better, got lower), mystery craters but has no known
	// direction.
	os.WriteFile(newPath, []byte(`{"go_version":"go1.24.0","goos":"linux","goarch":"amd64","benchmarks":[
		{"name":"BenchmarkShared","iterations":1,"metrics":{"ns/op":1100,"vdocs/s":80,"mystery":1}}]}`), 0o644)

	var b strings.Builder
	reg, err := compare(&b, oldPath, newPath, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 2 {
		t.Fatalf("regressions = %v, want ns/op and vdocs/s", reg)
	}
	if !strings.Contains(reg[0], "ns/op") || !strings.Contains(reg[1], "vdocs/s") {
		t.Errorf("regressions = %v", reg)
	}
	// A looser threshold clears the ns/op miss but not the vdocs/s one.
	if reg, _ = compare(&strings.Builder{}, oldPath, newPath, 15); len(reg) != 1 || !strings.Contains(reg[0], "vdocs/s") {
		t.Errorf("at 15%%: regressions = %v, want only vdocs/s", reg)
	}
	// Disabled gate: no regressions however bad the diff.
	if reg, _ = compare(&strings.Builder{}, oldPath, newPath, -1); len(reg) != 0 {
		t.Errorf("gate off but regressions = %v", reg)
	}
	// Improvements never trip the gate.
	if reg, _ = compare(&strings.Builder{}, newPath, oldPath, 0); len(reg) != 0 {
		t.Errorf("improvement flagged as regression: %v", reg)
	}
}

// TestMetricDirection pins the unit heuristic the gate rests on.
func TestMetricDirection(t *testing.T) {
	for unit, want := range map[string]int{
		"vdocs/s": 1, "pages/s": 1,
		"ns/op": -1, "B/op": -1, "allocs/op": -1,
		"fetched": 0, "zero": 0,
	} {
		if got := metricDirection(unit); got != want {
			t.Errorf("metricDirection(%q) = %d, want %d", unit, got, want)
		}
	}
}

// TestProfDiff diffs two synthetic profile exports: shared scopes get
// signed self-ms deltas, one-sided scopes are labelled, and the output
// is byte-stable.
func TestProfDiff(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "before.json")
	newPath := filepath.Join(dir, "after.json")
	os.WriteFile(oldPath, []byte(`{"total_virtual_ms":1000,"scopes":[
		{"name":"crawl.cycle.fetch","calls":10,"self_ms":800,"cum_ms":800},
		{"name":"crawl.cycle.gone","calls":1,"self_ms":200,"cum_ms":200}]}`), 0o644)
	os.WriteFile(newPath, []byte(`{"total_virtual_ms":1200,"scopes":[
		{"name":"crawl.cycle.fetch","calls":10,"self_ms":1000,"cum_ms":1000},
		{"name":"crawl.cycle.fresh","calls":2,"self_ms":200,"cum_ms":200}]}`), 0o644)

	var b strings.Builder
	if err := profdiff(&b, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"crawl.cycle.fetch", "+25.0%", // 800 -> 1000
		"added", "removed",
		"TOTAL", "+20.0%", // 1000 -> 1200
	} {
		if !strings.Contains(out, want) {
			t.Errorf("profdiff output missing %q:\n%s", want, out)
		}
	}
	var again strings.Builder
	if err := profdiff(&again, oldPath, newPath); err != nil {
		t.Fatal(err)
	}
	if again.String() != out {
		t.Error("profdiff output not byte-stable across calls")
	}
}
