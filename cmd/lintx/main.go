// Command lintx runs the repository's domain static analyzers
// (internal/analysis/checks) over one or more package patterns and
// reports invariant violations: nondeterminism (wall clock, map
// iteration order), copied locks, leaked goroutines, swallowed
// write-path errors, and unstable metric names.
//
// Usage:
//
//	lintx [-json] [-checks a,b,...] [-list] [pattern ...]
//
// Patterns are directories or dir/... walks (default "./..."; testdata,
// hidden, and _-prefixed directories are skipped). Exit status: 0 clean,
// 1 diagnostics reported, 2 usage or load failure.
//
// Suppress a finding with a directive on, or directly above, the line:
//
//	//lintx:ignore <check>[,<check>] <reason>
//
// The reason is mandatory; malformed directives are diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"

	"webtextie/internal/analysis"
	"webtextie/internal/analysis/checks"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	checksFlag := flag.String("checks", "", "comma-separated subset of analyzers to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := checks.All()
	if *list {
		for _, az := range analyzers {
			fmt.Printf("%-12s %s\n", az.Name, az.Doc)
		}
		return
	}
	if *checksFlag != "" {
		subset, unknown := checks.ByName(*checksFlag)
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "lintx: unknown checks %v (see lintx -list)\n", unknown)
			os.Exit(2)
		}
		analyzers = subset
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader, err := analysis.NewLoader(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintx: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPatterns(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintx: %v\n", err)
		os.Exit(2)
	}

	diags := analysis.Run(pkgs, analyzers)
	if cwd, err := os.Getwd(); err == nil {
		diags = analysis.Relativize(diags, cwd)
	}
	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "lintx: %v\n", err)
			os.Exit(2)
		}
	} else {
		if err := analysis.WriteText(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "lintx: %v\n", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lintx: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
