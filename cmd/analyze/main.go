// Command analyze runs the consolidated IE data flow (§3.2, Fig 2) over
// one of the four corpora and prints the extraction summary.
//
// Usage:
//
//	analyze [-corpus relevant|irrelevant|medline|pmc] [-dop N] [-quick] [-metrics]
//	        [-error-policy quarantine|failfast] [-op-retries N]
//	        [-trace] [-trace-out FILE] [-trace-chrome FILE] [-debug-addr HOST:PORT]
//
// -trace attaches the per-record lineage recorder to the executor (every
// quarantined record pins its full operator lineage); -debug-addr serves
// /metrics, /traces, /progress and /debug/pprof live while the analysis
// runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync/atomic"

	"webtextie"
	"webtextie/internal/obs"
	"webtextie/internal/obs/debugserv"
	"webtextie/internal/obs/trace"
	"webtextie/internal/textgen"
)

func main() {
	corpusName := flag.String("corpus", "medline", "corpus to analyze")
	dop := flag.Int("dop", 4, "degree of parallelism of the local executor")
	quick := flag.Bool("quick", true, "use the reduced quick configuration")
	out := flag.String("out", "", "directory for the exported fact database (JSONL chunks); empty = no export")
	metrics := flag.Bool("metrics", false, "dump the obs metric registry at exit")
	policy := flag.String("error-policy", "quarantine",
		"executor response to operator failures: quarantine (count, dead-letter, continue) or failfast (abort the run)")
	opRetries := flag.Int("op-retries", 0, "per-record operator retry budget before a failure is terminal")
	traceOn := flag.Bool("trace", false, "attach the deterministic record-lineage trace recorder to the executor")
	traceOut := flag.String("trace-out", "", "write the end-of-run trace export (text) to FILE (implies -trace)")
	traceChrome := flag.String("trace-chrome", "", "write the end-of-run trace export (Chrome trace_event JSON, for Perfetto) to FILE (implies -trace)")
	debugAddr := flag.String("debug-addr", "", "serve the live debug endpoints (/metrics /traces /progress /debug/pprof) on HOST:PORT (implies -trace)")
	flag.Parse()

	var kind webtextie.CorpusKind
	switch strings.ToLower(*corpusName) {
	case "relevant":
		kind = webtextie.Relevant
	case "irrelevant":
		kind = webtextie.Irrelevant
	case "medline":
		kind = webtextie.Medline
	case "pmc":
		kind = webtextie.PMC
	default:
		log.Fatalf("unknown corpus %q", *corpusName)
	}

	cfg := webtextie.DefaultConfig()
	if *quick {
		cfg = webtextie.QuickConfig()
	}
	switch strings.ToLower(*policy) {
	case "quarantine", "":
		cfg.ExecPolicy = webtextie.Quarantine
	case "failfast":
		cfg.ExecPolicy = webtextie.FailFast
	default:
		log.Fatalf("unknown -error-policy %q (want quarantine or failfast)", *policy)
	}
	cfg.ExecOpRetries = *opRetries

	var rec *trace.Recorder
	if *traceOn || *traceOut != "" || *traceChrome != "" || *debugAddr != "" {
		rec = trace.NewRecorder(trace.DefaultConfig(cfg.Corpora.Seed))
		cfg.ExecTrace = rec
	}
	var phase atomic.Value
	phase.Store("building system")
	if *debugAddr != "" {
		srv, err := debugserv.Start(*debugAddr, debugserv.Options{
			Registry: obs.Default(),
			Traces:   rec,
			Progress: func() any {
				return map[string]any{"phase": phase.Load(), "corpus": *corpusName, "dop": *dop}
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("debug server listening on http://%s/\n", srv.Addr())
	}

	fmt.Println("building system (corpora, crawl, tagger training)...")
	sys := webtextie.New(cfg)
	reg := sys.Registry()

	c := sys.Set.Corpus(kind)
	phase.Store("analyzing " + kind.String())
	fmt.Printf("analyzing %s: %d documents, %d raw bytes, DoP %d\n",
		kind, c.NumDocs(), c.RawBytes(), *dop)

	var a *webtextie.CorpusAnalysis
	var err error
	if *out != "" {
		var facts int64
		a, facts, err = sys.ExportFacts(reg, c, *dop, *out, 32<<20)
		if err == nil {
			fmt.Printf("exported %d facts to %s\n", facts, *out)
		}
	} else {
		a, err = sys.AnalyzeCorpus(reg, c, *dop)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsentences: %d   POS crashes skipped: %d   flow errors: %d   retries: %d   quarantined: %d\n",
		a.Sentences, a.PosFailed, a.FlowErrors, a.FlowRetries, a.FlowQuarantined)
	fmt.Printf("%-10s %-8s %14s %16s %18s\n", "class", "method", "mentions", "distinct names", "per 1000 sentences")
	for _, et := range []webtextie.EntityType{textgen.Disease, textgen.Drug, textgen.Gene} {
		for _, m := range []webtextie.Method{webtextie.Dict, webtextie.ML} {
			fmt.Printf("%-10s %-8s %14d %16d %18.2f\n",
				et, m, a.TotalMentions[m][et], len(a.DistinctNames[m][et]),
				a.MentionsPer1000Sentences(m, et))
		}
	}
	fmt.Printf("\nTLA-filtered ML gene mentions: %d (raw distinct ML gene names: %d)\n",
		a.TLARemoved, len(a.RawMLGeneNames))
	phase.Store("done")

	if rec != nil {
		s := rec.Snapshot()
		counts := s.ErrClassCounts()
		fmt.Printf("\ntraces: %d retained", len(s.Traces))
		for _, cl := range trace.SortedErrClasses(counts) {
			fmt.Printf(", %s=%d", cl, counts[cl])
		}
		fmt.Println()
		if *traceOut != "" {
			if err := os.WriteFile(*traceOut, []byte(s.Text()), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace export (text) written to %s\n", *traceOut)
		}
		if *traceChrome != "" {
			blob, err := s.Chrome()
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*traceChrome, blob, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("trace export (Perfetto) written to %s\n", *traceChrome)
		}
	}

	if *metrics {
		fmt.Println("\nmetric registry (obs)")
		fmt.Print(obs.Default().Snapshot().Text())
	}
}
