// Command analyze runs the consolidated IE data flow (§3.2, Fig 2) over
// one of the four corpora and prints the extraction summary.
//
// Usage:
//
//	analyze [-corpus relevant|irrelevant|medline|pmc] [-dop N] [-quick] [-metrics]
//	        [-error-policy quarantine|failfast] [-op-retries N]
//	        [-trace] [-trace-out FILE] [-trace-chrome FILE]
//	        [-log] [-log-out FILE] [-doctor] [-debug-addr HOST:PORT]
//
// -trace attaches the per-record lineage recorder to the executor (every
// quarantined record pins its full operator lineage); -log attaches the
// deterministic structured event log and -doctor prints the cross-pillar
// diagnosis at exit. -debug-addr serves /metrics, /traces, /logs,
// /doctor, /progress and /debug/pprof live while the analysis runs.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync/atomic"

	"webtextie"
	"webtextie/internal/obs"
	"webtextie/internal/obs/cliobs"
	"webtextie/internal/textgen"
)

func main() {
	corpusName := flag.String("corpus", "medline", "corpus to analyze")
	dop := flag.Int("dop", 4, "degree of parallelism of the local executor")
	quick := flag.Bool("quick", true, "use the reduced quick configuration")
	out := flag.String("out", "", "directory for the exported fact database (JSONL chunks); empty = no export")
	metrics := flag.Bool("metrics", false, "dump the obs metric registry at exit")
	policy := flag.String("error-policy", "quarantine",
		"executor response to operator failures: quarantine (count, dead-letter, continue) or failfast (abort the run)")
	opRetries := flag.Int("op-retries", 0, "per-record operator retry budget before a failure is terminal")
	obsFlags := cliobs.Register(flag.CommandLine)
	flag.Parse()

	var kind webtextie.CorpusKind
	switch strings.ToLower(*corpusName) {
	case "relevant":
		kind = webtextie.Relevant
	case "irrelevant":
		kind = webtextie.Irrelevant
	case "medline":
		kind = webtextie.Medline
	case "pmc":
		kind = webtextie.PMC
	default:
		log.Fatalf("unknown corpus %q", *corpusName)
	}

	cfg := webtextie.DefaultConfig()
	if *quick {
		cfg = webtextie.QuickConfig()
	}
	switch strings.ToLower(*policy) {
	case "quarantine", "":
		cfg.ExecPolicy = webtextie.Quarantine
	case "failfast":
		cfg.ExecPolicy = webtextie.FailFast
	default:
		log.Fatalf("unknown -error-policy %q (want quarantine or failfast)", *policy)
	}
	cfg.ExecOpRetries = *opRetries

	obsSetup := obsFlags.Setup(cfg.Corpora.Seed)
	cfg.ExecTrace = obsSetup.Traces
	cfg.ExecLog = obsSetup.Logs
	cfg.ExecProf = obsSetup.Prof
	var phase atomic.Value
	phase.Store("building system")
	addr, err := obsSetup.Serve(func() any {
		return map[string]any{"phase": phase.Load(), "corpus": *corpusName, "dop": *dop}
	})
	if err != nil {
		log.Fatal(err)
	}
	if addr != "" {
		fmt.Printf("debug server listening on http://%s/\n", addr)
	}

	fmt.Println("building system (corpora, crawl, tagger training)...")
	sys := webtextie.New(cfg)
	reg := sys.Registry()

	c := sys.Set.Corpus(kind)
	phase.Store("analyzing " + kind.String())
	fmt.Printf("analyzing %s: %d documents, %d raw bytes, DoP %d\n",
		kind, c.NumDocs(), c.RawBytes(), *dop)

	var a *webtextie.CorpusAnalysis
	if *out != "" {
		var facts int64
		a, facts, err = sys.ExportFacts(reg, c, *dop, *out, 32<<20)
		if err == nil {
			fmt.Printf("exported %d facts to %s\n", facts, *out)
		}
	} else {
		a, err = sys.AnalyzeCorpus(reg, c, *dop)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsentences: %d   POS crashes skipped: %d   flow errors: %d   retries: %d   quarantined: %d\n",
		a.Sentences, a.PosFailed, a.FlowErrors, a.FlowRetries, a.FlowQuarantined)
	fmt.Printf("%-10s %-8s %14s %16s %18s\n", "class", "method", "mentions", "distinct names", "per 1000 sentences")
	for _, et := range []webtextie.EntityType{textgen.Disease, textgen.Drug, textgen.Gene} {
		for _, m := range []webtextie.Method{webtextie.Dict, webtextie.ML} {
			fmt.Printf("%-10s %-8s %14d %16d %18.2f\n",
				et, m, a.TotalMentions[m][et], len(a.DistinctNames[m][et]),
				a.MentionsPer1000Sentences(m, et))
		}
	}
	fmt.Printf("\nTLA-filtered ML gene mentions: %d (raw distinct ML gene names: %d)\n",
		a.TLARemoved, len(a.RawMLGeneNames))
	phase.Store("done")

	summary, err := obsSetup.Finish()
	if summary != "" {
		fmt.Println()
		fmt.Print(summary)
	}
	if err != nil {
		log.Fatal(err)
	}

	if *metrics {
		fmt.Println("\nmetric registry (obs)")
		fmt.Print(obs.Default().Snapshot().Text())
	}
}
