// Command meteor parses, optimizes, and executes a Meteor script (§3.1)
// against documents drawn from the synthetic corpora. With no -script
// argument it runs the paper's consolidated Fig 2 flow over freshly
// fetched raw web pages.
//
// Usage:
//
//	meteor [-script file.mtr] [-docs N] [-dop N] [-noopt] [-plan]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"webtextie"
	"webtextie/internal/dataflow"
	"webtextie/internal/meteor"
	"webtextie/internal/synthweb"
)

func main() {
	scriptPath := flag.String("script", "", "Meteor script file ('' = built-in consolidated flow)")
	docs := flag.Int("docs", 50, "number of raw web pages to feed")
	dop := flag.Int("dop", 4, "degree of parallelism")
	noopt := flag.Bool("noopt", false, "disable the logical optimizer")
	showPlan := flag.Bool("plan", false, "print the compiled plan and exit")
	flag.Parse()

	src := webtextie.ConsolidatedMeteorScript
	if *scriptPath != "" {
		b, err := os.ReadFile(*scriptPath)
		if err != nil {
			log.Fatal(err)
		}
		src = string(b)
	}

	fmt.Println("building system...")
	sys := webtextie.New(webtextie.QuickConfig())
	reg := sys.Registry()

	script, err := meteor.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := meteor.Compile(script, reg)
	if err != nil {
		log.Fatal(err)
	}
	if !*noopt {
		st := dataflow.Optimize(compiled.Plan)
		fmt.Printf("optimizer: %d chains considered, %d swaps applied\n", st.Chains, st.Swaps)
	}
	if *showPlan {
		fmt.Printf("plan (%d operators):\n%s", compiled.Plan.Size(), compiled.Plan.String())
		return
	}

	// Feed raw pages from the synthetic web.
	var recs []dataflow.Record
	for _, h := range sys.Set.Web.Hosts {
		for i := 1; i < h.Pages && len(recs) < *docs; i++ {
			p, err := sys.Set.Web.Fetch(synthweb.PageURL(h.Name, i))
			if err != nil {
				continue
			}
			recs = append(recs, dataflow.Record{"id": p.URL, "html": string(p.Body)})
		}
		if len(recs) >= *docs {
			break
		}
	}
	inputs := map[string][]dataflow.Record{}
	for _, name := range compiled.Sources {
		inputs[name] = recs
	}

	out, stats, err := meteor.Run(src, reg, inputs, !*noopt, dataflow.ExecConfig{DoP: *dop})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed in %s with %d UDF errors\n", stats.Wall.Round(1e6), stats.TotalErrors())
	for name, rs := range out {
		fmt.Printf("sink %-14s %d records\n", name, len(rs))
	}
}
