package webtextie

// Gate over the committed cost-profiling baseline (BENCH_PR10.json,
// regenerated with `make bench-pr10`). The benchmarks rerun the PR-8
// supervised DoP-4 fleet plan with per-shard cost profiling off and on.
// With profiling off the profiler is a nil pointer behind one branch per
// stage, so the profiling-off run's virtual throughput must sit within
// 2% of the committed BENCH_PR9 sampling-off number (same plan, same
// web, same budget). The profiling-on entry is informational: it
// documents the per-stage atomic-add price and proves the merged profile
// actually attributed cost.

import "testing"

// TestBenchPR10ProfOverheadGate enforces the profiling-off overhead
// contract on the committed numbers.
func TestBenchPR10ProfOverheadGate(t *testing.T) {
	pr9 := loadBenchMetrics(t, "BENCH_PR9.json")
	pr10 := loadBenchMetrics(t, "BENCH_PR10.json")
	base := pr9["BenchmarkSupervisedShardCrawlSeriesOffDoP4"]
	off := pr10["BenchmarkSupervisedShardCrawlProfOffDoP4"]
	on := pr10["BenchmarkSupervisedShardCrawlProfOnDoP4"]
	if base == nil {
		t.Fatal("BENCH_PR9.json is missing the sampling-off benchmark; regenerate with `make bench-pr9`")
	}
	if off == nil || on == nil {
		t.Fatal("BENCH_PR10.json is missing the prof off/on benchmarks; regenerate with `make bench-pr10`")
	}
	for name, m := range map[string]map[string]float64{"off": off, "on": on} {
		if m["webpages"] != base["webpages"] || m["fetched"] != base["fetched"] {
			t.Errorf("prof-%s bench ran a different plan: %.0f pages fetched of a %.0f-page web, want %.0f of %.0f",
				name, m["fetched"], m["webpages"], base["fetched"], base["webpages"])
		}
		if m["vdocs/s"] <= 0 || m["ns/op"] <= 0 {
			t.Fatalf("BENCH_PR10.json prof-%s carries non-positive timings: %v", name, m)
		}
	}
	if min := base["vdocs/s"] * 0.98; off["vdocs/s"] < min {
		t.Errorf("profiling-off fleet throughput %.2f vdocs/s is below 98%% of the PR-9 %.2f; a detached profiler must be free",
			off["vdocs/s"], base["vdocs/s"])
	}
	if on["scopes"] <= 0 {
		t.Errorf("profiling-on bench attributed %v scopes, want > 0", on["scopes"])
	}
}
