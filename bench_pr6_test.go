package webtextie

// Gate over the committed sharded-crawl baseline (BENCH_PR6.json,
// regenerated with `make bench-pr6`). The two benchmarks run one crawl
// plan — a 12k-page budget against a ~1M-page synthetic web — at DoP 1
// and DoP 4. The gated metric is virtual throughput (vdocs/s): fetched
// pages per virtual second, where a sharded fleet's duration is its
// slowest shard's clock. Unlike wall time, the virtual clock is
// deterministic and machine-independent, so the parallel-speedup claim
// survives re-measurement on any hardware — including the single-core CI
// box, where a wall-clock speedup gate would be meaningless.

import (
	"encoding/json"
	"os"
	"testing"
)

// loadBenchMetrics reads a benchjson file as name -> full metric map
// (loadBenchFile only surfaces ns/op; the PR6 gate needs the
// b.ReportMetric domain metrics too).
func loadBenchMetrics(t *testing.T, path string) map[string]map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	var b benchBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("parsing %s: %v", path, err)
	}
	out := map[string]map[string]float64{}
	for _, e := range b.Benchmarks {
		out[e.Name] = e.Metrics
	}
	return out
}

// TestBenchPR6ShardSpeedupGate enforces the scale contract on the
// committed numbers: the benched universe holds ~1M pages, both DoP
// points crawled the full budget, and the 4-shard fleet's virtual
// throughput is at least 2x the single shard's.
func TestBenchPR6ShardSpeedupGate(t *testing.T) {
	pr6 := loadBenchMetrics(t, "BENCH_PR6.json")
	dop1, dop4 := pr6["BenchmarkShardCrawlDoP1"], pr6["BenchmarkShardCrawlDoP4"]
	if dop1 == nil || dop4 == nil {
		t.Fatal("BENCH_PR6.json is missing a DoP benchmark; regenerate with `make bench-pr6`")
	}
	for name, m := range map[string]map[string]float64{"DoP1": dop1, "DoP4": dop4} {
		if m["webpages"] < 900_000 {
			t.Errorf("%s ran against %.0f pages; the scale contract wants a ~1M-page web", name, m["webpages"])
		}
		if m["fetched"] < 12_000 {
			t.Errorf("%s fetched %.0f pages; want the full 12k budget", name, m["fetched"])
		}
		if m["ns/op"] <= 0 || m["vdocs/s"] <= 0 {
			t.Errorf("%s carries non-positive timings: %v", name, m)
		}
	}
	if ratio := dop4["vdocs/s"] / dop1["vdocs/s"]; ratio < 2 {
		t.Errorf("DoP 4 virtual throughput is only %.2fx DoP 1 (%.2f vs %.2f vdocs/s); the gate wants >= 2x",
			ratio, dop4["vdocs/s"], dop1["vdocs/s"])
	}
}
