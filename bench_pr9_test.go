package webtextie

// Gate over the committed series-sampling baseline (BENCH_PR9.json,
// regenerated with `make bench-pr9`). The benchmarks rerun the PR-8
// supervised DoP-4 fleet plan with fleet series sampling off and on.
// With sampling off the recorder is a nil pointer behind one branch per
// round, so the sampling-off run's virtual throughput must sit within 2%
// of the committed BENCH_PR8 number (same plan, same web, same budget).
// The sampling-on entry is informational: it documents the per-round
// registry-merge price and proves the recorder actually sampled.

import "testing"

// TestBenchPR9SeriesOverheadGate enforces the sampling-off overhead
// contract on the committed numbers.
func TestBenchPR9SeriesOverheadGate(t *testing.T) {
	pr8 := loadBenchMetrics(t, "BENCH_PR8.json")
	pr9 := loadBenchMetrics(t, "BENCH_PR9.json")
	base := pr8["BenchmarkSupervisedShardCrawlDoP4"]
	off := pr9["BenchmarkSupervisedShardCrawlSeriesOffDoP4"]
	on := pr9["BenchmarkSupervisedShardCrawlSeriesOnDoP4"]
	if base == nil {
		t.Fatal("BENCH_PR8.json is missing the supervised benchmark; regenerate with `make bench-pr8`")
	}
	if off == nil || on == nil {
		t.Fatal("BENCH_PR9.json is missing the series off/on benchmarks; regenerate with `make bench-pr9`")
	}
	for name, m := range map[string]map[string]float64{"off": off, "on": on} {
		if m["webpages"] != base["webpages"] || m["fetched"] != base["fetched"] {
			t.Errorf("series-%s bench ran a different plan: %.0f pages fetched of a %.0f-page web, want %.0f of %.0f",
				name, m["fetched"], m["webpages"], base["fetched"], base["webpages"])
		}
		if m["vdocs/s"] <= 0 || m["ns/op"] <= 0 {
			t.Fatalf("BENCH_PR9.json series-%s carries non-positive timings: %v", name, m)
		}
	}
	if min := base["vdocs/s"] * 0.98; off["vdocs/s"] < min {
		t.Errorf("sampling-off fleet throughput %.2f vdocs/s is below 98%% of the PR-8 %.2f; a detached recorder must be free",
			off["vdocs/s"], base["vdocs/s"])
	}
	if on["samples"] <= 0 {
		t.Errorf("sampling-on bench recorded %v samples, want > 0", on["samples"])
	}
}
